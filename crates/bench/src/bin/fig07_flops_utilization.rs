//! Figure 7: TPUv3 (WS systolic) FLOPS utilization during the key GEMM
//! classes of forward and backpropagation. Per-example weight-gradient
//! GEMMs show dramatically lower utilization — the paper's central
//! motivation.

use diva_bench::{fmt, paper_batch, print_table, run_parallel};
use diva_core::{Accelerator, DesignPoint, Phase};
use diva_workload::{zoo, Algorithm, ModelSpec};

/// Merged GEMM classes shown in Figure 7.
const CLASSES: [(&str, &[Phase]); 4] = [
    ("Fwdprop", &[Phase::Forward]),
    (
        "Backprop (activation grad)",
        &[Phase::BwdActGrad1, Phase::BwdActGrad2],
    ),
    ("Backprop (per-batch grad)", &[Phase::BwdPerBatchGrad]),
    ("Backprop (per-example grad)", &[Phase::BwdPerExampleGrad]),
];

fn main() {
    let ws = Accelerator::from_design_point(DesignPoint::WsBaseline);
    let models = zoo::all_models();
    let pe_macs = ws.config().pe.macs();

    let results = run_parallel(models, |model: &ModelSpec| {
        let batch = paper_batch(model);
        // DP-SGD(R) exercises all four GEMM classes in one step.
        let r = ws.run(model, Algorithm::DpSgdReweighted, batch);
        let utils: Vec<f64> = CLASSES
            .iter()
            .map(|(_, phases)| {
                let (macs, cycles) = phases.iter().fold((0u64, 0u64), |acc, &p| {
                    let b = r.timing.phases.get(&p);
                    (
                        acc.0 + b.map_or(0, |x| x.macs),
                        acc.1 + b.map_or(0, |x| x.cycles),
                    )
                });
                if cycles == 0 {
                    0.0
                } else {
                    macs as f64 / (cycles as f64 * pe_macs as f64)
                }
            })
            .collect();
        (model.name.clone(), batch, utils)
    });

    let mut rows = Vec::new();
    let mut gaps = Vec::new();
    for (name, batch, utils) in &results {
        rows.push(vec![
            name.clone(),
            batch.to_string(),
            fmt(100.0 * utils[0], 1),
            fmt(100.0 * utils[1], 1),
            fmt(100.0 * utils[2], 1),
            fmt(100.0 * utils[3], 1),
        ]);
        if utils[3] > 0.0 {
            gaps.push(utils[2] / utils[3]);
        }
    }
    print_table(
        "Figure 7: WS-baseline FLOPS utilization per GEMM class (%)",
        &[
            "model",
            "batch",
            "Fwdprop",
            "Bwd(act grad)",
            "Bwd(per-batch grad)",
            "Bwd(per-example grad)",
        ],
        &rows,
    );
    let max_gap = gaps.iter().cloned().fold(0.0, f64::max);
    println!(
        "\nPer-batch vs per-example utilization gap: up to {max_gap:.1}x \
         (paper: up to ~29x lower utilization for per-example GEMMs)"
    );
}
