//! Figure 15: FLOPS-utilization improvement per GEMM class, normalized to
//! the WS systolic baseline (paper: per-example gradients improve by 5.5×
//! on average, up to 28.9× on SqueezeNet; Transformers/RNNs ~2.2×).

use diva_bench::{fmt_x, paper_batch, print_table, run_parallel};
use diva_core::{Accelerator, DesignPoint, Phase};
use diva_workload::{zoo, Algorithm, ModelSpec};

const CLASSES: [(&str, &[Phase]); 4] = [
    ("Fwdprop", &[Phase::Forward]),
    ("Bwd(act grad)", &[Phase::BwdActGrad1, Phase::BwdActGrad2]),
    ("Bwd(per-batch)", &[Phase::BwdPerBatchGrad]),
    ("Bwd(per-example)", &[Phase::BwdPerExampleGrad]),
];

fn class_utils(r: &diva_core::Simulator, report: &diva_core::StepTiming, pe_macs: u64) -> Vec<f64> {
    let _ = r;
    CLASSES
        .iter()
        .map(|(_, phases)| {
            let (macs, cycles) = phases.iter().fold((0u64, 0u64), |acc, &p| {
                let b = report.phases.get(&p);
                (
                    acc.0 + b.map_or(0, |x| x.macs),
                    acc.1 + b.map_or(0, |x| x.cycles),
                )
            });
            if cycles == 0 {
                0.0
            } else {
                macs as f64 / (cycles as f64 * pe_macs as f64)
            }
        })
        .collect()
}

fn main() {
    let designs = [
        DesignPoint::WsBaseline,
        DesignPoint::OsWithPpu,
        DesignPoint::Diva,
    ];
    let accels: Vec<Accelerator> = designs
        .iter()
        .map(|&d| Accelerator::from_design_point(d))
        .collect();
    let models = zoo::all_models();

    let results = run_parallel(models, |model: &ModelSpec| {
        let batch = paper_batch(model);
        let utils: Vec<Vec<f64>> = accels
            .iter()
            .map(|a| {
                let r = a.run(model, Algorithm::DpSgdReweighted, batch);
                class_utils(a.simulator(), &r.timing, a.config().pe.macs())
            })
            .collect();
        (model.name.clone(), utils)
    });

    let mut rows = Vec::new();
    let mut pe_improvements = Vec::new();
    for (name, utils) in &results {
        let ws = &utils[0];
        for (di, design) in designs.iter().enumerate() {
            let mut row = vec![name.clone(), design.label().to_string()];
            for (ci, _) in CLASSES.iter().enumerate() {
                let v = if ws[ci] > 0.0 {
                    utils[di][ci] / ws[ci]
                } else {
                    0.0
                };
                row.push(fmt_x(v));
            }
            rows.push(row);
        }
        if ws[3] > 0.0 {
            pe_improvements.push(utils[2][3] / ws[3]);
        }
    }

    let mut headers: Vec<&str> = vec!["model", "design"];
    headers.extend(CLASSES.iter().map(|(n, _)| *n));
    print_table(
        "Figure 15: FLOPS-utilization improvement vs WS (DP-SGD(R))",
        &headers,
        &rows,
    );
    let avg = pe_improvements.iter().sum::<f64>() / pe_improvements.len() as f64;
    let max = pe_improvements.iter().cloned().fold(0.0, f64::max);
    println!(
        "\nDiVa per-example-grad utilization improvement: avg {avg:.1}x, max {max:.1}x \
         (paper: avg 5.5x, max 28.9x)"
    );
}
