//! Figure 15: FLOPS-utilization improvement vs WS — a legacy shim over
//! the registered `fig15` scenario (`diva-report fig15`).

fn main() {
    diva_bench::scenario::run("fig15");
}
