//! Section IV-C / VI-A: the PPU's post-processing traffic reduction — a
//! legacy shim over the registered `ppu_traffic` scenario
//! (`diva-report ppu_traffic`).

fn main() {
    diva_bench::scenario::run("ppu_traffic");
}
