//! Section IV-C / VI-A: the PPU's off-chip traffic reduction during
//! gradient post-processing (paper claim: 99%).
//!
//! Post-processing traffic = the DRAM bytes of per-example-gradient
//! write-back plus the gradient norm / clip / reduce / noise sweeps.

use diva_bench::{fmt_bytes, paper_batch, print_table};
use diva_core::{Accelerator, DesignPoint, Phase};
use diva_workload::{zoo, Algorithm};

/// Gradient-tensor movement during post-processing: the per-example
/// gradient spill (the *write* side of the per-example GEMMs — their input
/// reads are backpropagation proper, not post-processing) plus the
/// norm/clip/reduce sweeps that re-read those tensors.
fn post_bytes(report: &diva_core::StepTiming) -> u64 {
    let spill: u64 = report
        .ops
        .iter()
        .filter(|o| o.phase == Phase::BwdPerExampleGrad)
        .map(|o| o.dram_write_bytes)
        .sum();
    let sweeps: u64 = [
        Phase::BwdGradNorm,
        Phase::BwdGradClip,
        Phase::BwdReduceNoise,
    ]
    .iter()
    .map(|&p| report.phase_dram_bytes(p))
    .sum();
    spill + sweeps
}

fn main() {
    let diva = Accelerator::from_design_point(DesignPoint::Diva);
    let no_ppu = Accelerator::from_design_point(DesignPoint::DivaNoPpu);

    let mut rows = Vec::new();
    let mut reductions = Vec::new();
    for model in zoo::all_models() {
        let batch = paper_batch(&model);
        let with = diva.run(&model, Algorithm::DpSgdReweighted, batch);
        let without = no_ppu.run(&model, Algorithm::DpSgdReweighted, batch);
        let b_with = post_bytes(&with.timing);
        let b_without = post_bytes(&without.timing);
        let reduction = 100.0 * (1.0 - b_with as f64 / b_without as f64);
        reductions.push(reduction);
        rows.push(vec![
            model.name.clone(),
            batch.to_string(),
            fmt_bytes(b_without),
            fmt_bytes(b_with),
            format!("{reduction:.2}%"),
        ]);
    }
    print_table(
        "PPU off-chip traffic during gradient post-processing (DP-SGD(R))",
        &["model", "batch", "w/o PPU", "with PPU", "reduction"],
        &rows,
    );
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    println!("\nAverage reduction: {avg:.2}% (paper: 99%)");
}
