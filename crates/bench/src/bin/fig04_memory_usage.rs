//! Figure 4: memory-usage breakdown — a legacy shim over the registered
//! `fig04` scenario (`diva-report fig04`).

fn main() {
    diva_bench::scenario::run("fig04");
}
