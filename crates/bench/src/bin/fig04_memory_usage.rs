//! Figure 4: breakdown of training memory usage by functionality for SGD,
//! DP-SGD and DP-SGD(R), normalized to SGD's total. All three algorithms
//! use the same batch (the max DP-SGD batch, per the paper's caption).

use diva_bench::{fmt, paper_batch, print_table};
use diva_workload::{zoo, Algorithm};

fn main() {
    let mut rows = Vec::new();
    let mut dp_fracs = Vec::new();
    let mut reductions = Vec::new();
    for model in zoo::all_models() {
        let batch = paper_batch(&model);
        let sgd_total = model.memory_profile(Algorithm::Sgd, batch).total() as f64;
        for alg in Algorithm::ALL {
            let p = model.memory_profile(alg, batch);
            rows.push(vec![
                model.name.clone(),
                alg.label().to_string(),
                batch.to_string(),
                fmt(p.weight_bytes as f64 / sgd_total, 2),
                fmt(p.activation_bytes as f64 / sgd_total, 2),
                fmt(p.per_batch_grad_bytes as f64 / sgd_total, 2),
                fmt(p.per_example_grad_bytes as f64 / sgd_total, 2),
                fmt(p.other_bytes as f64 / sgd_total, 2),
                fmt(p.total() as f64 / sgd_total, 2),
            ]);
            if alg == Algorithm::DpSgd {
                dp_fracs.push(p.per_example_fraction());
                let dpr = model.memory_profile(Algorithm::DpSgdReweighted, batch);
                reductions.push(p.total() as f64 / dpr.total() as f64);
            }
        }
    }
    print_table(
        "Figure 4: memory usage breakdown (normalized to SGD total, identical batch)",
        &[
            "model",
            "algorithm",
            "batch",
            "weight",
            "activation",
            "per-batch G(W)",
            "per-example G(W)",
            "else",
            "total",
        ],
        &rows,
    );
    let avg_frac = dp_fracs.iter().sum::<f64>() / dp_fracs.len() as f64;
    let avg_red = reductions.iter().sum::<f64>() / reductions.len() as f64;
    println!(
        "\nDP-SGD per-example gradient share of total memory: avg {:.0}% (paper: ~78%)",
        100.0 * avg_frac
    );
    println!("DP-SGD(R) memory reduction vs DP-SGD: avg {avg_red:.1}x (paper: ~3.8x)");
}
