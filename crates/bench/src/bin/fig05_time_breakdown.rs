//! Figure 5: end-to-end training time on the TPUv3-like WS baseline,
//! broken into forward/backward phases, for SGD, DP-SGD and DP-SGD(R),
//! normalized to SGD. (The paper's headline: DP-SGD ≈ 9.1× and
//! DP-SGD(R) ≈ 5.8× slower than SGD on average, with backprop ≈ 99% of
//! DP time.)

use diva_bench::{fmt, paper_batch, print_table, run_parallel};
use diva_core::{Accelerator, DesignPoint, Phase};
use diva_workload::{zoo, Algorithm};

fn main() {
    let ws = Accelerator::from_design_point(DesignPoint::WsBaseline);
    let models = zoo::all_models();

    struct Row {
        model: String,
        alg: Algorithm,
        batch: u64,
        phase_cycles: Vec<u64>,
        total: u64,
    }

    let work: Vec<(diva_workload::ModelSpec, Algorithm)> = models
        .iter()
        .flat_map(|m| Algorithm::ALL.iter().map(|&a| (m.clone(), a)))
        .collect();
    let results: Vec<Row> = run_parallel(work, |(model, alg)| {
        let batch = paper_batch(model);
        let r = ws.run(model, *alg, batch);
        Row {
            model: model.name.clone(),
            alg: *alg,
            batch,
            phase_cycles: Phase::ALL.iter().map(|&p| r.phase_cycles(p)).collect(),
            total: r.timing.total_cycles(),
        }
    });

    let mut rows = Vec::new();
    let mut dp_slowdowns = Vec::new();
    let mut dpr_slowdowns = Vec::new();
    let mut bwd_fractions = Vec::new();
    for chunk in results.chunks(3) {
        let sgd_total = chunk[0].total as f64;
        for r in chunk {
            let mut row = vec![
                r.model.clone(),
                r.alg.label().to_string(),
                r.batch.to_string(),
            ];
            for cycles in &r.phase_cycles {
                row.push(fmt(*cycles as f64 / sgd_total, 2));
            }
            row.push(fmt(r.total as f64 / sgd_total, 2));
            rows.push(row);
            match r.alg {
                Algorithm::DpSgd => dp_slowdowns.push(r.total as f64 / sgd_total),
                Algorithm::DpSgdReweighted => {
                    dpr_slowdowns.push(r.total as f64 / sgd_total);
                    let fwd = r.phase_cycles[0] as f64;
                    bwd_fractions.push(1.0 - fwd / r.total as f64);
                }
                Algorithm::Sgd => {}
            }
        }
    }

    let mut headers: Vec<&str> = vec!["model", "algorithm", "batch"];
    let labels: Vec<String> = Phase::ALL.iter().map(|p| p.label().to_string()).collect();
    headers.extend(labels.iter().map(String::as_str));
    headers.push("total");
    print_table(
        "Figure 5: training-time breakdown on WS baseline (normalized to SGD)",
        &headers,
        &rows,
    );

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nDP-SGD slowdown vs SGD:     avg {:.1}x (paper: ~9.1x)",
        avg(&dp_slowdowns)
    );
    println!(
        "DP-SGD(R) slowdown vs SGD:  avg {:.1}x (paper: ~5.8x)",
        avg(&dpr_slowdowns)
    );
    println!(
        "DP-SGD(R) vs DP-SGD:        avg {:.0}% faster (paper: ~31%)",
        100.0 * (1.0 - avg(&dpr_slowdowns) / avg(&dp_slowdowns))
    );
    println!(
        "Backprop share of DP-SGD(R) time: avg {:.0}% (paper: ~99%)",
        100.0 * avg(&bwd_fractions)
    );
}
