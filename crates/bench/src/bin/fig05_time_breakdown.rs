//! Figure 5: WS-baseline training-time breakdown — a legacy shim over the
//! registered `fig05` scenario (`diva-report fig05`).

fn main() {
    diva_bench::scenario::run("fig05");
}
