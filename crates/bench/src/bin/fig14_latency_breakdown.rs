//! Figure 14: DP-SGD(R) latency breakdown per design point — a legacy
//! shim over the registered `fig14` scenario (`diva-report fig14`).

fn main() {
    diva_bench::scenario::run("fig14");
}
