//! Figure 14: DP-SGD(R) training-time breakdown per design point for
//! VGG-16, ResNet-152, BERT-large and LSTM-large, normalized to the WS
//! baseline total. Shows where DiVa's speedup comes from: per-example
//! gradient GEMMs and grad-norm derivation collapse.

use diva_bench::{fmt, paper_batch, print_table};
use diva_core::{Accelerator, DesignPoint, Phase};
use diva_workload::{zoo, Algorithm};

const SHOWN_PHASES: [Phase; 6] = [
    Phase::Forward,
    Phase::BwdActGrad1,
    Phase::BwdPerExampleGrad,
    Phase::BwdGradNorm,
    Phase::BwdActGrad2,
    Phase::BwdPerBatchGrad,
];

fn main() {
    let models = [
        zoo::vgg16(),
        zoo::resnet152(),
        zoo::bert_large(),
        zoo::lstm_large(),
    ];
    let accels: Vec<Accelerator> = DesignPoint::ALL
        .iter()
        .map(|&dp| Accelerator::from_design_point(dp))
        .collect();

    let mut rows = Vec::new();
    let mut pe_grad_reductions = Vec::new();
    for model in &models {
        let batch = paper_batch(model);
        let reports: Vec<_> = accels
            .iter()
            .map(|a| a.run(model, Algorithm::DpSgdReweighted, batch))
            .collect();
        let ws_total = reports[0].timing.total_cycles() as f64;
        let ws_pe = reports[0].phase_cycles(Phase::BwdPerExampleGrad) as f64;
        for r in &reports {
            let mut row = vec![model.name.clone(), r.accelerator.clone()];
            for &p in &SHOWN_PHASES {
                row.push(fmt(r.phase_cycles(p) as f64 / ws_total, 3));
            }
            row.push(fmt(r.timing.total_cycles() as f64 / ws_total, 3));
            rows.push(row);
        }
        let diva_pe = reports[3].phase_cycles(Phase::BwdPerExampleGrad) as f64;
        if diva_pe > 0.0 {
            pe_grad_reductions.push(ws_pe / diva_pe);
        }
    }

    let mut headers: Vec<&str> = vec!["model", "design"];
    let labels: Vec<String> = SHOWN_PHASES.iter().map(|p| p.label().to_string()).collect();
    headers.extend(labels.iter().map(String::as_str));
    headers.push("total");
    print_table(
        "Figure 14: DP-SGD(R) latency breakdown (normalized to WS total)",
        &headers,
        &rows,
    );
    let avg = pe_grad_reductions.iter().sum::<f64>() / pe_grad_reductions.len() as f64;
    let max = pe_grad_reductions.iter().cloned().fold(0.0, f64::max);
    println!(
        "\nPer-example-gradient latency reduction, DiVa vs WS: avg {avg:.1}x, max {max:.1}x \
         (paper: avg 7.0x, max 14.6x)"
    );
}
