//! Ablation: vanilla DP-SGD vs DP-SGD(R) — a legacy shim over the
//! registered `ablation_vanilla_dpsgd` scenario
//! (`diva-report ablation_vanilla_dpsgd`).

fn main() {
    diva_bench::scenario::run("ablation_vanilla_dpsgd");
}
