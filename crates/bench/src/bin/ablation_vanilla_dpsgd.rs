//! Ablation: Figure 13 rerun with *vanilla* DP-SGD instead of DP-SGD(R).
//!
//! The paper evaluates DiVa on DP-SGD(R) (its strongest baseline
//! algorithm). Vanilla DP-SGD must persist every per-example gradient for
//! the later clip/reduce sweep, so the PPU can fuse the norm computation
//! but not the spill — DiVa still wins, by less, and memory bandwidth
//! becomes the wall. This quantifies how much of DiVa's win depends on the
//! algorithm co-design.

use diva_bench::{fmt_x, paper_batch, print_table, run_parallel};
use diva_core::{Accelerator, DesignPoint};
use diva_workload::{zoo, Algorithm, ModelSpec};

fn main() {
    let ws = Accelerator::from_design_point(DesignPoint::WsBaseline);
    let diva = Accelerator::from_design_point(DesignPoint::Diva);
    let models = zoo::all_models();

    let results = run_parallel(models, |model: &ModelSpec| {
        let batch = paper_batch(model);
        let rows: Vec<f64> = [Algorithm::DpSgd, Algorithm::DpSgdReweighted]
            .iter()
            .map(|&alg| {
                let base = ws.run(model, alg, batch).seconds;
                let fast = diva.run(model, alg, batch).seconds;
                base / fast
            })
            .collect();
        (model.name.clone(), batch, rows)
    });

    let mut rows = Vec::new();
    let mut vanilla = Vec::new();
    let mut reweighted = Vec::new();
    for (name, batch, speedups) in &results {
        rows.push(vec![
            name.clone(),
            batch.to_string(),
            fmt_x(speedups[0]),
            fmt_x(speedups[1]),
        ]);
        vanilla.push(speedups[0]);
        reweighted.push(speedups[1]);
    }
    print_table(
        "Ablation: DiVa speedup vs WS under vanilla DP-SGD vs DP-SGD(R)",
        &["model", "batch", "DP-SGD", "DP-SGD(R)"],
        &rows,
    );
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\naverage: {:.2}x (vanilla) vs {:.2}x (reweighted) — the hardware needs the\n\
         algorithm: without DP-SGD(R)'s ephemeral gradients the spill traffic caps the win.",
        avg(&vanilla),
        avg(&reweighted)
    );
}
