//! Roofline analysis of DP-SGD(R)'s GEMM classes (analytical backdrop of
//! the paper's Section III-C): where each phase sits relative to the
//! machine's ridge point on WS vs DiVa, and how PPU fusion moves the
//! per-example gradients off the memory roof.

use diva_arch::{Phase, TrainingOpKind};
use diva_bench::{fmt, paper_batch, print_table};
use diva_core::{Accelerator, DesignPoint};
use diva_sim::{ridge_intensity, roofline, Bound};
use diva_workload::{zoo, Algorithm};

fn main() {
    let model = zoo::resnet50();
    let batch = paper_batch(&model);
    let ops = model.lower(Algorithm::DpSgdReweighted, batch);

    let mut rows = Vec::new();
    for dp in [DesignPoint::WsBaseline, DesignPoint::Diva] {
        let accel = Accelerator::from_design_point(dp);
        let cfg = accel.config();
        // One representative GEMM per phase: the largest by MACs, except
        // the per-example phase, where the *smallest K* is the pathological
        // (and interesting) case.
        for phase in [
            Phase::Forward,
            Phase::BwdActGrad1,
            Phase::BwdPerBatchGrad,
            Phase::BwdPerExampleGrad,
        ] {
            let candidates = ops.iter().filter(|o| o.phase == phase);
            let pick = if phase == Phase::BwdPerExampleGrad {
                candidates.min_by_key(|o| match &o.kind {
                    TrainingOpKind::Gemm { shape, .. } => shape.k,
                    _ => u64::MAX,
                })
            } else {
                candidates.max_by_key(|o| o.macs())
            };
            let Some(op) = pick else { continue };
            let TrainingOpKind::Gemm {
                shape,
                count,
                output_persists,
            } = &op.kind
            else {
                continue;
            };
            let write = *output_persists || !accel.simulator().can_fuse_postprocessing();
            let p = roofline(cfg, *shape, *count, write);
            rows.push(vec![
                dp.label().to_string(),
                phase.label().to_string(),
                format!("{shape} x{count}"),
                if p.intensity.is_infinite() {
                    "inf".to_string()
                } else {
                    fmt(p.intensity, 1)
                },
                fmt(p.macs_per_cycle, 0),
                fmt(p.ceiling, 0),
                match p.bound {
                    Bound::Compute => "compute".to_string(),
                    Bound::Memory => "memory".to_string(),
                },
            ]);
        }
    }
    let diva_cfg = DesignPoint::Diva.config();
    print_table(
        &format!(
            "Roofline: ResNet-50 DP-SGD(R) at batch {batch} (ridge = {:.1} MACs/byte)",
            ridge_intensity(&diva_cfg)
        ),
        &[
            "design",
            "phase",
            "largest GEMM",
            "MACs/byte",
            "MACs/cyc",
            "ceiling",
            "bound",
        ],
        &rows,
    );
    println!(
        "\nThe small-K per-example gradient GEMM is the pathology: on WS its spilled\n\
         output pins it to the memory roof at a fraction of peak; on DiVa the PPU\n\
         consumes the output on-chip, lifting both the intensity and the achieved\n\
         rate — Section III-C's bottleneck, visualized."
    );
}
