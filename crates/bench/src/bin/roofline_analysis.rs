//! Section III-C: roofline placement of DP-SGD(R)'s GEMM classes — a
//! legacy shim over the registered `roofline` scenario
//! (`diva-report roofline`).

fn main() {
    diva_bench::scenario::run("roofline");
}
