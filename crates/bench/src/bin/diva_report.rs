//! `diva-report` — the one CLI behind every paper figure, table and
//! ablation.
//!
//! ```text
//! diva-report --list
//! diva-report fig13
//! diva-report fig13 --json out.json --models mobilenet,vgg16 --points ws,diva
//! diva-report sensitivity_image --batch 32 --csv out.csv --no-table
//! diva-report fig13 --axis algorithm=dp-sgd-r --json - --no-table
//! ```
//!
//! Axis filters restrict any registered scenario without per-scenario
//! code: `--models`, `--points`, `--algs` and `--axis NAME=a,b` subset an
//! axis (labels matched case-insensitively, punctuation ignored), while
//! `--batch N[,M...]` *replaces* the batch axis (its default usually holds
//! the symbolic paper policy). `--selfcheck` re-reads the JSON written by
//! `--json` and validates schema, axes and reductions — the CI smoke path.

use std::process::ExitCode;

use diva_bench::print_table;
use diva_bench::scenario::{
    self,
    json::{parse_scenario_json, to_json},
    render::{print_result, to_csv},
    RunOptions,
};

/// Parsed command line.
struct Args {
    scenario: Option<String>,
    list: bool,
    opts: RunOptions,
    json: Option<String>,
    csv: Option<String>,
    no_table: bool,
    selfcheck: bool,
}

const USAGE: &str = "\
usage: diva-report --list
       diva-report <scenario> [options]

options:
  --list               list registered scenarios (with their axes)
  --models A,B         restrict the \"model\" axis
  --points A,B         restrict the \"point\" axis
  --algs A,B           restrict the \"algorithm\" axis
  --axis NAME=A,B      restrict any axis by name
  --batch N[,M...]     replace the \"batch\" axis with fixed sizes
  --json PATH          write the diva-scenario/v1 JSON document (\"-\" = stdout)
  --csv PATH           write CSV rows (\"-\" = stdout)
  --no-table           suppress the text table
  --selfcheck          re-read and validate the document written by --json
  --help               show this help

Filter labels are matched case-insensitively with punctuation stripped:
--points diva-w/o-ppu matches the \"DiVa w/o PPU\" arm.";

fn split_csv(value: &str) -> Vec<String> {
    value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        scenario: None,
        list: false,
        opts: RunOptions::default(),
        json: None,
        csv: None,
        no_table: false,
        selfcheck: false,
    };
    let mut it = argv.iter().peekable();
    let value_of = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                    flag: &str|
     -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--list" => args.list = true,
            "--no-table" => args.no_table = true,
            "--selfcheck" => args.selfcheck = true,
            "--json" => args.json = Some(value_of(&mut it, "--json")?),
            "--csv" => args.csv = Some(value_of(&mut it, "--csv")?),
            "--models" | "--points" | "--algs" => {
                let axis = match arg.as_str() {
                    "--models" => "model",
                    "--points" => "point",
                    _ => "algorithm",
                };
                let labels = split_csv(&value_of(&mut it, arg)?);
                args.opts.filters.push((axis.to_string(), labels));
            }
            "--axis" => {
                let spec = value_of(&mut it, "--axis")?;
                let (axis, labels) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--axis wants NAME=A,B, got {spec:?}"))?;
                args.opts
                    .filters
                    .push((axis.to_string(), split_csv(labels)));
            }
            "--batch" => {
                let batches: Result<Vec<u64>, _> = split_csv(&value_of(&mut it, "--batch")?)
                    .iter()
                    .map(|b| b.parse::<u64>())
                    .collect();
                let batches = batches.map_err(|e| format!("--batch wants integers: {e}"))?;
                if batches.is_empty() || batches.contains(&0) {
                    return Err("--batch wants positive integers".to_string());
                }
                args.opts.batch_override = Some(batches);
            }
            name if !name.starts_with('-') && args.scenario.is_none() => {
                args.scenario = Some(name.to_string());
            }
            other => return Err(format!("unknown argument {other:?}\n\n{USAGE}")),
        }
    }
    Ok(args)
}

/// Prints the registry as an aligned table: name, axes, summary.
fn print_list() {
    let rows: Vec<Vec<String>> = scenario::registry::REGISTRY
        .iter()
        .map(|info| {
            let exp = (info.build)();
            let axes: Vec<String> = exp
                .axes
                .iter()
                .map(|a| format!("{}({})", a.name, a.values.len()))
                .collect();
            vec![
                info.name.to_string(),
                axes.join(" x "),
                info.summary.to_string(),
            ]
        })
        .collect();
    print_table(
        "Registered scenarios (diva-report <name> [--json out.json] [--models ...])",
        &["name", "axes", "summary"],
        &rows,
    );
}

/// Validates an emitted JSON document: schema, scenario name, declared
/// axes and reductions all present and parseable. `text` is re-read from
/// disk when the document went to a file, so the check covers the actual
/// artifact.
fn selfcheck(text: &str, expected: &scenario::ScenarioResult) -> Result<(), String> {
    let parsed = parse_scenario_json(text)?;
    if parsed.scenario != expected.name {
        return Err(format!(
            "selfcheck: scenario {:?} != expected {:?}",
            parsed.scenario, expected.name
        ));
    }
    for axis in &expected.axes {
        let found = parsed
            .axes
            .iter()
            .find(|(name, _)| name == &axis.name)
            .ok_or_else(|| format!("selfcheck: axis {:?} missing from JSON", axis.name))?;
        if found.1 != axis.labels {
            return Err(format!(
                "selfcheck: axis {:?} labels {:?} != {:?}",
                axis.name, found.1, axis.labels
            ));
        }
    }
    if parsed.reductions.len() != expected.summaries.len() {
        return Err(format!(
            "selfcheck: {} reductions in JSON, {} computed",
            parsed.reductions.len(),
            expected.summaries.len()
        ));
    }
    if parsed.records.len() != expected.rows.len() {
        return Err(format!(
            "selfcheck: {} records in JSON, {} computed",
            parsed.records.len(),
            expected.rows.len()
        ));
    }
    println!(
        "selfcheck ok: {} ({} records, {} reductions, {} axes)",
        parsed.scenario,
        parsed.records.len(),
        parsed.reductions.len(),
        parsed.axes.len()
    );
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    if args.list {
        print_list();
        return Ok(());
    }
    let Some(name) = &args.scenario else {
        return Err(USAGE.to_string());
    };
    let result = scenario::run_with(name, &args.opts)?;
    if !args.no_table {
        print_result(&result);
    }
    if let Some(path) = &args.csv {
        let csv = to_csv(&result);
        if path == "-" {
            print!("{csv}");
        } else {
            std::fs::write(path, csv).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
    }
    if let Some(path) = &args.json {
        let json = to_json(&result);
        if path == "-" {
            print!("{json}");
        } else {
            std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        if args.selfcheck {
            // Re-read the artifact when it went to a file, so the check
            // covers what actually landed on disk.
            let written = if path == "-" {
                json
            } else {
                std::fs::read_to_string(path).map_err(|e| format!("selfcheck: read {path}: {e}"))?
            };
            selfcheck(&written, &result)?;
        }
    } else if args.selfcheck {
        return Err("--selfcheck requires --json".to_string());
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("diva-report: {msg}");
            ExitCode::FAILURE
        }
    }
}
