//! `diva-report` — the one CLI behind every paper figure, table and
//! ablation.
//!
//! ```text
//! diva-report --list
//! diva-report fig13
//! diva-report fig13 --json out.json --models mobilenet,vgg16 --points ws,diva
//! diva-report sensitivity_image --batch 32 --csv out.csv --no-table
//! diva-report fig13 --axis algorithm=dp-sgd-r --json - --no-table
//! ```
//!
//! Axis filters restrict any registered scenario without per-scenario
//! code: `--models`, `--points`, `--algs` and `--axis NAME=a,b` subset an
//! axis (labels matched case-insensitively, punctuation ignored), while
//! `--batch N[,M...]` *replaces* the batch axis (its default usually holds
//! the symbolic paper policy). `--selfcheck` re-reads the JSON written by
//! `--json` and validates schema, axes and reductions — the CI smoke path.
//!
//! Fault tolerance: `--keep-going` records failed cells as explicit error
//! records instead of aborting, `--max-retries N` allows bounded retries,
//! `--resume DIR` journals completed cells and reuses them across runs,
//! and `--inject`/`--fault-seed`/`--fault-sticky` drive the deterministic
//! fault-injection harness (CI only). Exit codes: 0 success, 1
//! usage/config/parse error, 2 cell failures, 3 `--compare` gate failure,
//! 4 resume-journal error.

use std::process::ExitCode;

use diva_bench::faults::FaultPlan;
use diva_bench::print_table;
use diva_bench::scenario::{
    self,
    compare::compare_docs,
    json::{parse_scenario_json, to_json},
    render::{print_result, to_csv},
    RunOptions, ScenarioError,
};

/// Parsed command line.
struct Args {
    scenario: Option<String>,
    list: bool,
    params: bool,
    opts: RunOptions,
    json: Option<String>,
    csv: Option<String>,
    no_table: bool,
    selfcheck: bool,
    compare: Option<(String, String)>,
    tolerance: f64,
}

const USAGE: &str = "\
usage: diva-report --list
       diva-report <scenario> [options]
       diva-report --compare A.json B.json [--tolerance 0.05]

options:
  --list               list registered scenarios (with their axes)
  --params             list the registered config parameters (--set/--sweep keys)
  --models A,B         restrict the \"model\" axis
  --points A,B         restrict the \"point\" axis
  --algs A,B           restrict the \"algorithm\" axis
  --axis NAME=A,B      restrict any axis by name
  --batch N[,M...]     replace the \"batch\" axis with fixed sizes
  --set KEY=VALUE      override a config parameter on every accelerator arm
                       (repeatable; KEY is a registry name like drain_rows)
  --sweep KEY=V1,V2    inject an ad-hoc config axis sweeping KEY (repeatable)
  --json PATH          write the diva-scenario/v1 JSON document (\"-\" = stdout)
  --csv PATH           write CSV rows (\"-\" = stdout)
  --no-table           suppress the text table
  --selfcheck          re-read and validate the document written by --json
  --compare A B        diff two diva-scenario/v1 documents cell-by-cell;
                       exits nonzero when a ratio-normalized metric drifts
                       more than the tolerance
  --tolerance F        --compare gate on relative drift (default 0.05)
  --keep-going         record failed cells as error records instead of
                       aborting (the run still exits 2)
  --max-retries N      extra supervised attempts per failing cell (default 0)
  --timeout-ms N       soft per-cell wall-clock budget; over-budget cells
                       fail as timed-out (off by default: wall-clock
                       classification breaks byte-identical artifacts)
  --resume DIR         journal completed cells under DIR and reuse them:
                       a re-run evaluates only missing/failed cells and
                       produces a byte-identical document
  --inject SPEC        deterministic fault injection (CI only), e.g.
                       panic=0.5,nan=0.1; kinds: panic, nan, delay
  --fault-seed N       seed for --inject decisions (default 0)
  --fault-sticky       injected faults fire on every attempt, not just the
                       first (exercises retry exhaustion)
  --help               show this help

exit codes:
  0 success    1 usage/config/parse error    2 cell failures
  3 --compare gate failure                   4 resume-journal error

Filter labels are matched case-insensitively with punctuation stripped:
--points diva-w/o-ppu matches the \"DiVa w/o PPU\" arm.";

fn split_csv(value: &str) -> Vec<String> {
    value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        scenario: None,
        list: false,
        params: false,
        opts: RunOptions::default(),
        json: None,
        csv: None,
        no_table: false,
        selfcheck: false,
        compare: None,
        tolerance: 0.05,
    };
    let mut inject: Option<String> = None;
    let mut fault_seed: u64 = 0;
    let mut fault_seed_set = false;
    let mut fault_sticky = false;
    let mut it = argv.iter().peekable();
    let value_of = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                    flag: &str|
     -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--list" => args.list = true,
            "--params" => args.params = true,
            "--no-table" => args.no_table = true,
            "--selfcheck" => args.selfcheck = true,
            "--keep-going" => args.opts.keep_going = true,
            "--fault-sticky" => fault_sticky = true,
            "--inject" => inject = Some(value_of(&mut it, "--inject")?),
            "--fault-seed" => {
                let raw = value_of(&mut it, "--fault-seed")?;
                fault_seed = raw
                    .parse()
                    .map_err(|e| format!("--fault-seed wants an integer: {e}"))?;
                fault_seed_set = true;
            }
            "--max-retries" => {
                let raw = value_of(&mut it, "--max-retries")?;
                args.opts.max_retries = raw
                    .parse()
                    .map_err(|e| format!("--max-retries wants an integer: {e}"))?;
            }
            "--timeout-ms" => {
                let raw = value_of(&mut it, "--timeout-ms")?;
                let ms: u64 = raw
                    .parse()
                    .map_err(|e| format!("--timeout-ms wants an integer: {e}"))?;
                if ms == 0 {
                    return Err("--timeout-ms wants a positive integer".to_string());
                }
                args.opts.cell_timeout_ms = Some(ms);
            }
            "--resume" => {
                args.opts.resume_dir = Some(value_of(&mut it, "--resume")?.into());
            }
            "--json" => args.json = Some(value_of(&mut it, "--json")?),
            "--csv" => args.csv = Some(value_of(&mut it, "--csv")?),
            "--set" => {
                let spec = value_of(&mut it, "--set")?;
                // The shared parse/message path (`diva_core::spec`) keeps
                // CLI and diva-serve errors word-for-word identical.
                let (key, value) = diva_core::spec::parse_set_spec(&spec)
                    .map_err(|e| diva_core::spec::config_message(&e))?;
                args.opts.set_overrides.push((key, value));
            }
            "--sweep" => {
                let spec = value_of(&mut it, "--sweep")?;
                let (key, values) = diva_core::spec::parse_sweep_spec(&spec)
                    .map_err(|e| diva_core::spec::config_message(&e))?;
                args.opts.sweeps.push((key, values));
            }
            "--compare" => {
                let a = value_of(&mut it, "--compare")?;
                let b = it
                    .next()
                    .cloned()
                    .ok_or_else(|| "--compare wants two document paths".to_string())?;
                args.compare = Some((a, b));
            }
            "--tolerance" => {
                let raw = value_of(&mut it, "--tolerance")?;
                let tol: f64 = raw
                    .parse()
                    .map_err(|e| format!("--tolerance wants a number: {e}"))?;
                if !tol.is_finite() || tol < 0.0 {
                    return Err(format!(
                        "--tolerance wants a non-negative number, got {raw}"
                    ));
                }
                args.tolerance = tol;
            }
            "--models" | "--points" | "--algs" => {
                let axis = match arg.as_str() {
                    "--models" => "model",
                    "--points" => "point",
                    _ => "algorithm",
                };
                let labels = split_csv(&value_of(&mut it, arg)?);
                args.opts.filters.push((axis.to_string(), labels));
            }
            "--axis" => {
                let spec = value_of(&mut it, "--axis")?;
                let (axis, labels) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--axis wants NAME=A,B, got {spec:?}"))?;
                args.opts
                    .filters
                    .push((axis.to_string(), split_csv(labels)));
            }
            "--batch" => {
                let batches: Result<Vec<u64>, _> = split_csv(&value_of(&mut it, "--batch")?)
                    .iter()
                    .map(|b| b.parse::<u64>())
                    .collect();
                let batches = batches.map_err(|e| format!("--batch wants integers: {e}"))?;
                if batches.is_empty() || batches.contains(&0) {
                    return Err("--batch wants positive integers".to_string());
                }
                args.opts.batch_override = Some(batches);
            }
            name if !name.starts_with('-') && args.scenario.is_none() => {
                args.scenario = Some(name.to_string());
            }
            other => return Err(format!("unknown argument {other:?}\n\n{USAGE}")),
        }
    }
    match inject {
        Some(spec) => {
            args.opts.faults = Some(FaultPlan::parse(&spec, fault_seed, fault_sticky)?);
        }
        None if fault_seed_set || fault_sticky => {
            return Err("--fault-seed/--fault-sticky require --inject".to_string());
        }
        None => {}
    }
    Ok(args)
}

/// Prints the registry as an aligned table: name, axes, summary.
fn print_list() {
    let rows: Vec<Vec<String>> = scenario::registry::REGISTRY
        .iter()
        .map(|info| {
            let exp = (info.build)();
            let axes: Vec<String> = exp
                .axes
                .iter()
                .map(|a| format!("{}({})", a.name, a.values.len()))
                .collect();
            vec![
                info.name.to_string(),
                axes.join(" x "),
                info.summary.to_string(),
            ]
        })
        .collect();
    print_table(
        "Registered scenarios (diva-report <name> [--json out.json] [--models ...])",
        &["name", "axes", "summary"],
        &rows,
    );
}

/// Validates an emitted JSON document: schema, scenario name, declared
/// axes and reductions all present and parseable. `text` is re-read from
/// disk when the document went to a file, so the check covers the actual
/// artifact.
fn selfcheck(text: &str, expected: &scenario::ScenarioResult) -> Result<(), String> {
    let parsed = parse_scenario_json(text)?;
    if parsed.scenario != expected.name {
        return Err(format!(
            "selfcheck: scenario {:?} != expected {:?}",
            parsed.scenario, expected.name
        ));
    }
    for axis in &expected.axes {
        let found = parsed
            .axes
            .iter()
            .find(|(name, _)| name == &axis.name)
            .ok_or_else(|| format!("selfcheck: axis {:?} missing from JSON", axis.name))?;
        if found.1 != axis.labels {
            return Err(format!(
                "selfcheck: axis {:?} labels {:?} != {:?}",
                axis.name, found.1, axis.labels
            ));
        }
    }
    if parsed.reductions.len() != expected.summaries.len() {
        return Err(format!(
            "selfcheck: {} reductions in JSON, {} computed",
            parsed.reductions.len(),
            expected.summaries.len()
        ));
    }
    if parsed.records.len() != expected.rows.len() {
        return Err(format!(
            "selfcheck: {} records in JSON, {} computed",
            parsed.records.len(),
            expected.rows.len()
        ));
    }
    println!(
        "selfcheck ok: {} ({} records, {} reductions, {} axes)",
        parsed.scenario,
        parsed.records.len(),
        parsed.reductions.len(),
        parsed.axes.len()
    );
    Ok(())
}

/// Prints the parameter registry: every `--set`/`--sweep` key with its
/// description and Table II (DiVa-preset) default.
fn print_params() {
    let default = diva_core::DesignPoint::Diva.config();
    let rows: Vec<Vec<String>> = diva_arch::params::PARAMS
        .iter()
        .map(|p| {
            vec![
                p.name.to_string(),
                (p.get)(&default).format(),
                p.doc.to_string(),
            ]
        })
        .collect();
    print_table(
        "Registered config parameters (diva-report <scenario> --sweep NAME=V1,V2)",
        &["name", "default", "description"],
        &rows,
    );
}

/// Runs `--compare`: prints the per-metric drift report. A gate failure
/// (drift beyond tolerance, missing rows) exits `3` without the error
/// banner — the report already explained itself.
fn run_compare(a: &str, b: &str, tolerance: f64) -> Result<ExitCode, ScenarioError> {
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
            path: path.to_string(),
            message: e.to_string(),
        })
    };
    let report = compare_docs(&read(a)?, &read(b)?, tolerance).map_err(ScenarioError::Parse)?;
    print!("{}", report.render());
    if report.passed() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(3))
    }
}

fn run(args: &Args) -> Result<ExitCode, ScenarioError> {
    if args.list {
        print_list();
        return Ok(ExitCode::SUCCESS);
    }
    if args.params {
        print_params();
        return Ok(ExitCode::SUCCESS);
    }
    if let Some((a, b)) = &args.compare {
        return run_compare(a, b, args.tolerance);
    }
    let Some(name) = &args.scenario else {
        eprintln!("{USAGE}");
        return Ok(ExitCode::FAILURE);
    };
    let write = |path: &str, text: &str| {
        std::fs::write(path, text).map_err(|e| ScenarioError::Io {
            path: path.to_string(),
            message: e.to_string(),
        })
    };
    let result = scenario::run_with(name, &args.opts)?;
    if !args.no_table {
        print_result(&result);
    }
    if let Some(path) = &args.csv {
        let csv = to_csv(&result);
        if path == "-" {
            print!("{csv}");
        } else {
            write(path, &csv)?;
            eprintln!("wrote {path}");
        }
    }
    if let Some(path) = &args.json {
        let json = to_json(&result);
        if path == "-" {
            print!("{json}");
        } else {
            write(path, &json)?;
            eprintln!("wrote {path}");
        }
        if args.selfcheck {
            // Re-read the artifact when it went to a file, so the check
            // covers what actually landed on disk.
            let written = if path == "-" {
                json
            } else {
                std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
                    path: path.to_string(),
                    message: e.to_string(),
                })?
            };
            selfcheck(&written, &result).map_err(ScenarioError::Parse)?;
        }
    } else if args.selfcheck {
        return Err(ScenarioError::InvalidOptions(
            "--selfcheck requires --json".to_string(),
        ));
    }
    // Under --keep-going the artifacts above carry explicit error records
    // for every failed cell; the exit code still reports the damage.
    if !result.failures.is_empty() {
        eprintln!(
            "diva-report: {} cell(s) failed; error records are in the output",
            result.failures.len()
        );
        for failure in &result.failures {
            eprintln!("  {failure}");
        }
        return Ok(ExitCode::from(2));
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(err) => {
            eprintln!("diva-report: {err}");
            ExitCode::from(err.exit_code())
        }
    }
}
