//! Figure 6: the GEMM dimensions of forward propagation, per-batch weight
//! gradients, and per-example weight gradients, instantiated on concrete
//! layers of the zoo (one per layer family).

use diva_bench::print_table;
use diva_workload::{zoo, LayerSpec};

fn main() {
    let batch = 32u64;
    let mut rows = Vec::new();

    let mut show = |family: &str, model: &str, layer: &LayerSpec| {
        let fwd = layer.forward_gemms(batch);
        let pb = layer.per_batch_wgrad_gemms(batch);
        let pe = layer.per_example_wgrad_gemms(batch);
        if fwd.is_empty() || pb.is_empty() || pe.is_empty() {
            return;
        }
        rows.push(vec![
            family.to_string(),
            format!("{model}/{}", layer.name()),
            format!("{}", fwd[0].shape),
            format!("{}", pb[0].shape),
            format!("{} x{}", pe[0].shape, pe[0].count),
        ]);
    };

    // MLP layer: the VGG classifier head.
    let vgg = zoo::vgg16();
    if let Some(l) = vgg
        .layers
        .iter()
        .find(|l| matches!(l, LayerSpec::Linear { .. }))
    {
        show("MLP", &vgg.name, l);
    }
    // Convolution: a mid-network ResNet-50 3x3.
    let rn = zoo::resnet50();
    if let Some(l) = rn.layers.iter().find(
        |l| matches!(l, LayerSpec::Conv { k, cin, groups, .. } if *k == 3 && *cin >= 128 && *groups == 1),
    ) {
        show("Convolutional", &rn.name, l);
    }
    // Depthwise convolution: MobileNet.
    let mb = zoo::mobilenet();
    if let Some(l) = mb
        .layers
        .iter()
        .find(|l| matches!(l, LayerSpec::Conv { groups, .. } if *groups > 1))
    {
        show("Depthwise conv", &mb.name, l);
    }
    // Time-series MLP: a BERT projection and an LSTM gate GEMM.
    let bb = zoo::bert_base();
    if let Some(l) = bb
        .layers
        .iter()
        .find(|l| matches!(l, LayerSpec::SeqLinear { .. }))
    {
        show("MLP (time-series)", &bb.name, l);
    }
    let ll = zoo::lstm_large();
    if let Some(l) = ll
        .layers
        .iter()
        .find(|l| matches!(l, LayerSpec::SeqLinear { .. }))
    {
        show("MLP (time-series)", &ll.name, l);
    }

    print_table(
        &format!("Figure 6: GEMM (M, K, N) per training phase, B = {batch}"),
        &[
            "layer kind",
            "instance",
            "forward",
            "per-batch G(W)",
            "per-example G(W)",
        ],
        &rows,
    );
    println!(
        "\nNote how per-example K collapses: conv K = P*Q, MLP K = 1, time-series K = L —\n\
         independent of the mini-batch, unlike per-batch K (the paper's key observation)."
    );
}
