//! Figure 6: GEMM dimensions per training phase — a legacy shim over the
//! registered `fig06` scenario (`diva-report fig06`).

fn main() {
    diva_bench::scenario::run("fig06");
}
