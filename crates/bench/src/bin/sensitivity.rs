//! Section VI-C sensitivity: DiVa's speedup over the WS baseline as inputs
//! grow — image area ×4/×16/×64 for the CNNs, sequence length ×2/×4/×8 for
//! BERT/LSTM. Larger inputs enlarge the per-example GEMM K dimension, so
//! the systolic baseline recovers and DiVa's edge narrows (paper:
//! 3.6×/2.1×/1.7× for images, 2.0×/1.6×/1.5× for sequences).

use diva_bench::{fmt_x, paper_batch, print_table};
use diva_core::{Accelerator, DesignPoint};
use diva_workload::{zoo, Algorithm, ModelSpec};

/// A named parameterized model builder (input side or sequence length).
type ModelBuilder = (&'static str, fn(usize) -> ModelSpec);

fn speedup(ws: &Accelerator, diva: &Accelerator, model: &ModelSpec) -> f64 {
    let batch = paper_batch(model);
    let base = ws.run(model, Algorithm::DpSgdReweighted, batch).seconds;
    let fast = diva.run(model, Algorithm::DpSgdReweighted, batch).seconds;
    base / fast
}

fn main() {
    let ws = Accelerator::from_design_point(DesignPoint::WsBaseline);
    let diva = Accelerator::from_design_point(DesignPoint::Diva);

    // --- Image-size sweep over the five CNNs ---
    let sides = [32usize, 64, 128, 256];
    let cnn_builders: [ModelBuilder; 5] = [
        ("VGG-16", zoo::vgg16_at),
        ("ResNet-50", zoo::resnet50_at),
        ("ResNet-152", zoo::resnet152_at),
        ("SqueezeNet", zoo::squeezenet_at),
        ("MobileNet", zoo::mobilenet_at),
    ];
    let mut rows = Vec::new();
    let mut avgs = vec![Vec::new(); sides.len()];
    for (name, build) in &cnn_builders {
        let mut row = vec![name.to_string()];
        for (i, &side) in sides.iter().enumerate() {
            let model = build(side);
            let s = speedup(&ws, &diva, &model);
            avgs[i].push(s);
            row.push(fmt_x(s));
        }
        rows.push(row);
    }
    let mut avg_row = vec!["average".to_string()];
    for a in &avgs {
        avg_row.push(fmt_x(a.iter().sum::<f64>() / a.len() as f64));
    }
    rows.push(avg_row);
    print_table(
        "Sensitivity: DiVa speedup vs WS as image size grows (pixels x1/x4/x16/x64)",
        &["model", "32x32", "64x64", "128x128", "256x256"],
        &rows,
    );
    println!("(paper averages: 3.6x / 2.1x / 1.7x at x4/x16/x64)");

    // --- Sequence-length sweep over BERT/LSTM ---
    let seqs = [32usize, 64, 128, 256];
    let seq_builders: [ModelBuilder; 4] = [
        ("BERT-base", zoo::bert_base_with_seq),
        ("BERT-large", zoo::bert_large_with_seq),
        ("LSTM-small", zoo::lstm_small_with_seq),
        ("LSTM-large", zoo::lstm_large_with_seq),
    ];
    let mut rows = Vec::new();
    let mut avgs = vec![Vec::new(); seqs.len()];
    for (name, build) in &seq_builders {
        let mut row = vec![name.to_string()];
        for (i, &seq) in seqs.iter().enumerate() {
            let model = build(seq);
            let s = speedup(&ws, &diva, &model);
            avgs[i].push(s);
            row.push(fmt_x(s));
        }
        rows.push(row);
    }
    let mut avg_row = vec!["average".to_string()];
    for a in &avgs {
        avg_row.push(fmt_x(a.iter().sum::<f64>() / a.len() as f64));
    }
    rows.push(avg_row);
    print_table(
        "Sensitivity: DiVa speedup vs WS as sequence length grows (L = 32/64/128/256)",
        &["model", "L=32", "L=64", "L=128", "L=256"],
        &rows,
    );
    println!("(paper averages: 2.0x / 1.6x / 1.5x at x2/x4/x8)");
}
