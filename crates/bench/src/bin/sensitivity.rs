//! Section VI-C sensitivity studies — a legacy shim running both
//! registered sweeps (`diva-report sensitivity_image` /
//! `diva-report sensitivity_seq`).

fn main() {
    diva_bench::scenario::run("sensitivity_image");
    diva_bench::scenario::run("sensitivity_seq");
}
