//! Frontier renderers: text table, JSON document and CSV.
//!
//! The JSON document follows the workspace's flat-object conventions
//! (`diva-scenario/v1` style: hand-rolled emitter, `Display`-formatted
//! floats that round-trip bit-exactly, strings through the shared
//! escaper) under its own `diva-explore/v1` schema tag. Because every
//! value in an [`ExploreResult`] is deterministic, the rendered bytes are
//! the artifact the thread-count and kill/resume identity tests `cmp`.

use std::fmt::Write as _;

use crate::perf::json_string;

use super::{ExploreResult, Objective};

/// Renders the search's JSON document (`diva-explore/v1`).
pub fn render_json(result: &ExploreResult) -> String {
    let cfg = &result.config;
    let knobs = cfg
        .space
        .knobs
        .iter()
        .map(|k| format!("{}={}", k.param, k.values.join("|")))
        .collect::<Vec<_>>()
        .join(";");
    let workloads = cfg
        .workloads
        .iter()
        .map(|w| w.spec_string())
        .collect::<Vec<_>>()
        .join(",");
    let objectives = cfg
        .objectives
        .iter()
        .map(|o| o.metric())
        .collect::<Vec<_>>()
        .join(",");

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"name\": \"explore\",");
    let _ = writeln!(out, "  \"schema\": \"diva-explore/v1\",");
    let _ = writeln!(out, "  \"base\": {},", json_string(cfg.space.base.label()));
    let _ = writeln!(out, "  \"strategy\": {},", json_string(cfg.strategy.slug()));
    let _ = writeln!(out, "  \"seed\": {},", cfg.seed);
    let _ = writeln!(out, "  \"budget\": {},", cfg.budget);
    let _ = writeln!(out, "  \"objectives\": {},", json_string(&objectives));
    let _ = writeln!(out, "  \"workloads\": {},", json_string(&workloads));
    let _ = writeln!(out, "  \"knobs\": {},", json_string(&knobs));
    // Run-variant counters (journal reuse, memo hits) are deliberately
    // absent: a resumed search must render byte-identically to a fresh
    // one. They live in the text summary and in `ExploreResult::stats`.
    let _ = writeln!(out, "  \"evaluated\": {},", result.evaluated.len());
    let _ = writeln!(out, "  \"generated\": {},", result.stats.generated);
    let _ = writeln!(out, "  \"invalid\": {},", result.stats.invalid);
    let _ = writeln!(out, "  \"frontier_size\": {},", result.frontier.len());
    let _ = writeln!(out, "  \"complete\": {},", result.complete);
    out.push_str("  \"frontier\": [\n");
    let points = result.frontier.points();
    for (i, p) in points.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(out, "\"name\": \"point\", \"rank\": {}", i + 1);
        let _ = write!(out, ", \"spec\": {}", json_string(&p.spec));
        let _ = write!(out, ", \"config\": {}", json_string(&p.config_key));
        for (k, v) in &p.metrics {
            if v.is_finite() {
                let _ = write!(out, ", {}: {v}", json_string(k));
            } else {
                let _ = write!(out, ", {}: null", json_string(k));
            }
        }
        out.push('}');
        if i + 1 < points.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the frontier as CSV: `rank,spec` plus the canonical metric
/// columns. The spec cell is quoted (it contains commas).
pub fn render_csv(result: &ExploreResult) -> String {
    let mut out = String::from("rank,spec");
    if let Some(first) = result.frontier.points().first() {
        for (k, _) in &first.metrics {
            let _ = write!(out, ",{k}");
        }
    } else {
        for o in &result.config.objectives {
            let _ = write!(out, ",{}", o.metric());
        }
    }
    out.push('\n');
    for (i, p) in result.frontier.points().iter().enumerate() {
        let _ = write!(out, "{},\"{}\"", i + 1, p.spec.replace('"', "\"\""));
        for (_, v) in &p.metrics {
            let _ = write!(out, ",{v}");
        }
        out.push('\n');
    }
    out
}

/// Renders the human-facing summary and frontier table.
pub fn render_text(result: &ExploreResult) -> String {
    let cfg = &result.config;
    let memo = result.stats.memo;
    let hit_rate = if memo.lookups > 0 {
        (memo.lookups - memo.computed) as f64 / memo.lookups as f64
    } else {
        0.0
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== diva-explore: {} search over {} ({} knobs, {} grid points) ==",
        cfg.strategy.slug(),
        cfg.space.base.label(),
        cfg.space.knobs.len(),
        cfg.space.grid_size()
    );
    let _ = writeln!(
        out,
        "evaluated {} / budget {} (reused {}, invalid {}), memo hit rate {:.0}%{}",
        result.evaluated.len(),
        cfg.budget,
        result.stats.journal_reused,
        result.stats.invalid,
        hit_rate * 100.0,
        if result.complete {
            ""
        } else {
            "  [killed early]"
        }
    );
    let _ = writeln!(
        out,
        "frontier: {} non-dominated point(s) over ({})",
        result.frontier.len(),
        cfg.objectives
            .iter()
            .map(|o| o.metric())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Frontier table: rank, spec, the searched objectives.
    let mut headers = vec!["rank".to_string(), "spec".to_string()];
    headers.extend(cfg.objectives.iter().map(|o| o.metric().to_string()));
    let rows: Vec<Vec<String>> = result
        .frontier
        .points()
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut row = vec![(i + 1).to_string(), p.spec.clone()];
            row.extend(p.objectives.iter().map(|(_, v)| format!("{v:.4e}")));
            row
        })
        .collect();
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(c, h)| {
            rows.iter()
                .map(|r| r[c].len())
                .chain([h.len()])
                .max()
                .unwrap_or(0)
        })
        .collect();
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let _ = writeln!(out, "{}", fmt_row(&headers));
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
    );
    for row in &rows {
        let _ = writeln!(out, "{}", fmt_row(row));
    }
    out
}

/// The minimum value each searched objective attains over the frontier —
/// the "best corner" scalars the `explore_frontier` scenario gates on.
pub fn best_per_objective(result: &ExploreResult) -> Vec<(Objective, f64)> {
    result
        .config
        .objectives
        .iter()
        .map(|o| {
            let best = result
                .frontier
                .points()
                .iter()
                .filter_map(|p| {
                    p.objectives
                        .iter()
                        .find(|(k, _)| k == o.metric())
                        .map(|(_, v)| *v)
                })
                .fold(f64::INFINITY, f64::min);
            (*o, best)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::super::{EvaluatedPoint, ExploreConfig, ExploreResult, ExploreStats, Frontier};
    use super::*;

    fn tiny_result() -> ExploreResult {
        let cfg = ExploreConfig::new(super::super::SearchSpace::default_space());
        let mut frontier = Frontier::new();
        let point = EvaluatedPoint {
            spec: "DiVa:pe.rows=64".to_string(),
            config_key: "pe.rows=64,...".to_string(),
            objectives: vec![
                ("latency_s".to_string(), 0.5),
                ("energy_j".to_string(), 2.0),
                ("area_mm2".to_string(), 100.0),
            ],
            metrics: vec![
                ("latency_s".to_string(), 0.5),
                ("energy_j".to_string(), 2.0),
                ("area_mm2".to_string(), 100.0),
            ],
        };
        frontier.offer(point.clone());
        ExploreResult {
            config: cfg,
            evaluated: vec![point],
            frontier,
            stats: ExploreStats::default(),
            complete: true,
        }
    }

    #[test]
    fn json_is_balanced_and_tagged() {
        let json = render_json(&tiny_result());
        assert!(json.contains("\"schema\": \"diva-explore/v1\""));
        assert!(json.contains("\"frontier_size\": 1"));
        assert!(json.contains("\"complete\": true"));
        assert!(json.contains("\"spec\": \"DiVa:pe.rows=64\""));
        assert!(json.contains("\"latency_s\": 0.5"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn csv_quotes_specs_and_lists_metrics() {
        let csv = render_csv(&tiny_result());
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("rank,spec,latency_s,energy_j,area_mm2"));
        assert_eq!(lines.next(), Some("1,\"DiVa:pe.rows=64\",0.5,2,100"));
    }

    #[test]
    fn text_mentions_the_frontier() {
        let text = render_text(&tiny_result());
        assert!(text.contains("frontier: 1 non-dominated point(s)"));
        assert!(text.contains("DiVa:pe.rows=64"));
    }

    #[test]
    fn best_per_objective_takes_minima() {
        let best = best_per_objective(&tiny_result());
        assert_eq!(best.len(), 3);
        assert_eq!(best[0].1, 0.5);
        assert_eq!(best[1].1, 2.0);
    }
}
