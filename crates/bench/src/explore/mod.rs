//! The design-space explorer: a Pareto-frontier search driver over the
//! 12-knob `diva_arch::params` registry.
//!
//! A search is `(space, strategy, seed, budget, workloads, objectives)`.
//! The driver generates candidates in a strictly deterministic sequence
//! (see [`strategy`]), evaluates each batch work-stealing-style over the
//! shared `diva_tensor` worker pool, memoizes repeated accelerator
//! materializations behind a canonical-config key (see [`evaluate`]),
//! folds results into an exact Pareto frontier (see [`frontier`]), and —
//! when a journal directory is given — records every evaluated point
//! through the `scenario::journal` machinery so a killed search resumes
//! byte-identically.
//!
//! Three front doors share this engine: the `diva-explore` CLI
//! (`crates/explore`), the registered `explore_frontier` scenario
//! (regression-gateable via `diva-report --compare`), and `diva-serve`'s
//! `POST /explore` job endpoint.

pub mod evaluate;
pub mod frontier;
pub mod render;
pub mod strategy;

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use diva_arch::params;

use crate::run_parallel;
use crate::scenario::journal::{fingerprint_hex, Journal, JournalOutcome, JournalSpec};
use crate::scenario::{Cell, ScenarioError};

use evaluate::evaluate_config;
pub use evaluate::{EvalCache, MemoStats, Workload};
pub use frontier::{dominates, Frontier};
pub use strategy::{Knob, SearchSpace, Strategy};

/// One optimization objective; all are minimized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// Summed step latency over the workload set (seconds).
    Latency,
    /// Summed step energy over the workload set (joules).
    Energy,
    /// Synthesized engine area (mm², workload-independent).
    Area,
}

impl Objective {
    /// All objectives, in canonical order.
    pub const ALL: [Objective; 3] = [Objective::Latency, Objective::Energy, Objective::Area];

    /// The metric name this objective reads (`latency_s`, `energy_j`,
    /// `area_mm2`).
    pub fn metric(self) -> &'static str {
        match self {
            Objective::Latency => "latency_s",
            Objective::Energy => "energy_j",
            Objective::Area => "area_mm2",
        }
    }

    /// Parses one objective slug (`latency`, `energy`, `area`; the metric
    /// names are accepted too).
    ///
    /// # Errors
    ///
    /// Lists the valid slugs when `text` matches none.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text.trim().to_ascii_lowercase().as_str() {
            "latency" | "latency_s" => Ok(Objective::Latency),
            "energy" | "energy_j" => Ok(Objective::Energy),
            "area" | "area_mm2" => Ok(Objective::Area),
            other => Err(format!(
                "unknown objective {other:?} (expected latency, energy or area)"
            )),
        }
    }

    /// Parses a comma-separated objective list, deduplicated with order
    /// preserved.
    ///
    /// # Errors
    ///
    /// Rejects empty lists and unknown slugs.
    pub fn parse_list(text: &str) -> Result<Vec<Self>, String> {
        let mut out = Vec::new();
        for part in text.split(',').filter(|p| !p.trim().is_empty()) {
            let o = Self::parse(part)?;
            if !out.contains(&o) {
                out.push(o);
            }
        }
        if out.is_empty() {
            return Err("no objectives given".to_string());
        }
        Ok(out)
    }
}

/// One evaluated candidate: its identity, the objective vector dominance
/// is decided on, and the full metric set for rendering/journaling.
#[derive(Clone, Debug, PartialEq)]
pub struct EvaluatedPoint {
    /// Canonical candidate spec, `preset[:k=v,...]` (the journal key).
    pub spec: String,
    /// Canonical resolved-config key (the memo-cache key).
    pub config_key: String,
    /// `(metric, value)` per searched objective, in objective order.
    pub objectives: Vec<(String, f64)>,
    /// The full metric vector, canonical order.
    pub metrics: Vec<(String, f64)>,
}

impl EvaluatedPoint {
    /// The objective values, aligned with the search's objective order.
    pub fn objective_values(&self) -> Vec<f64> {
        self.objectives.iter().map(|(_, v)| *v).collect()
    }
}

/// A full search description; [`explore`] is a pure function of it.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Base preset and knob grid.
    pub space: SearchSpace,
    /// Workload set the latency/energy objectives sum over.
    pub workloads: Vec<Workload>,
    /// Objectives to minimize (order fixes the dominance vector).
    pub objectives: Vec<Objective>,
    /// Candidate-generation strategy.
    pub strategy: Strategy,
    /// RNG seed for the random/halving strategies.
    pub seed: u64,
    /// Maximum candidates to evaluate.
    pub budget: usize,
    /// Candidates dispatched per parallel batch (the frontier — and with
    /// it the halving strategy — updates between batches).
    pub batch_size: usize,
    /// Journal directory for kill/resume; `None` disables journaling.
    pub journal_dir: Option<PathBuf>,
    /// Test/CI hook: stop (leaving the journal partial) after this many
    /// points have been journaled *by this run*.
    pub kill_after: Option<usize>,
    /// Disables the memo cache (bench baseline; searches always leave
    /// this on).
    pub memo: bool,
}

impl ExploreConfig {
    /// A search over `space` with the explorer's defaults: random
    /// strategy, seed 42, budget 64, batch size 16, all three objectives,
    /// SqueezeNet+MobileNet at batch 32, memoized, no journal.
    pub fn new(space: SearchSpace) -> Self {
        Self {
            space,
            workloads: vec![
                Workload::parse("squeezenet@32").expect("default workload"),
                Workload::parse("mobilenet@32").expect("default workload"),
            ],
            objectives: Objective::ALL.to_vec(),
            strategy: Strategy::Random,
            seed: 42,
            budget: 64,
            batch_size: 16,
            journal_dir: None,
            kill_after: None,
            memo: true,
        }
    }

    /// The parts hashed into the journal fingerprint: everything that
    /// shapes the candidate sequence or a point's metrics.
    fn fingerprint_parts(&self) -> Vec<String> {
        let mut parts = vec![
            "diva-explore/v1".to_string(),
            self.space.base.label().to_string(),
            self.strategy.slug().to_string(),
            self.seed.to_string(),
            self.budget.to_string(),
            self.batch_size.to_string(),
        ];
        for k in &self.space.knobs {
            parts.push(format!("{}={}", k.param, k.values.join("|")));
        }
        for w in &self.workloads {
            parts.push(w.spec_string());
        }
        for o in &self.objectives {
            parts.push(o.metric().to_string());
        }
        parts
    }

    /// The journal header identity for this search.
    pub fn journal_spec(&self) -> JournalSpec {
        JournalSpec {
            scenario: "explore".to_string(),
            fingerprint: fingerprint_hex(&self.fingerprint_parts()),
            overrides: String::new(),
        }
    }

    fn validate(&self) -> Result<(), ScenarioError> {
        let invalid = |msg: String| Err(ScenarioError::InvalidOptions(msg));
        if self.objectives.is_empty() {
            return invalid("no objectives".to_string());
        }
        if self.workloads.is_empty() {
            return invalid("no workloads".to_string());
        }
        if self.budget == 0 {
            return invalid("budget must be positive".to_string());
        }
        if self.batch_size == 0 {
            return invalid("batch size must be positive".to_string());
        }
        if self.space.knobs.is_empty() {
            return invalid("search space has no knobs".to_string());
        }
        for k in &self.space.knobs {
            if !params::is_param(&k.param) {
                return invalid(format!("unknown parameter {:?}", k.param));
            }
            if k.values.is_empty() {
                return invalid(format!("knob {:?} has no values", k.param));
            }
        }
        Ok(())
    }
}

/// Search counters, all deterministic for a fixed config.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Candidates generated by the strategy.
    pub generated: u64,
    /// Candidates whose config failed validation (skipped, not journaled).
    pub invalid: u64,
    /// Points replayed from the journal instead of re-simulated.
    pub journal_reused: u64,
    /// Memo-cache counters over fresh evaluations.
    pub memo: MemoStats,
}

/// The completed (or killed) search.
#[derive(Clone, Debug)]
pub struct ExploreResult {
    /// The search that produced this result.
    pub config: ExploreConfig,
    /// Every evaluated point, in candidate order.
    pub evaluated: Vec<EvaluatedPoint>,
    /// The exact Pareto frontier over `evaluated`.
    pub frontier: Frontier,
    /// Deterministic counters.
    pub stats: ExploreStats,
    /// `false` when `kill_after` stopped the search early.
    pub complete: bool,
}

/// Builds the journal cell for an evaluated point (full metric vector
/// plus the config key as a note).
fn cell_for(point: &EvaluatedPoint) -> Cell {
    let mut cell = Cell::new().note("config", point.config_key.clone());
    for (k, v) in &point.metrics {
        cell = cell.metric(k.clone(), *v);
    }
    cell
}

/// Rebuilds an evaluated point from its journal cell.
fn point_from_cell(
    spec: &str,
    cell: &Cell,
    objectives: &[Objective],
) -> Result<EvaluatedPoint, ScenarioError> {
    let config_key = cell
        .notes
        .iter()
        .find(|(k, _)| k == "config")
        .map(|(_, v)| v.clone())
        .ok_or_else(|| {
            ScenarioError::Journal(format!("journaled point {spec:?} has no config note"))
        })?;
    let mut objective_vals = Vec::with_capacity(objectives.len());
    for o in objectives {
        let v = cell.get(o.metric()).ok_or_else(|| {
            ScenarioError::Journal(format!(
                "journaled point {spec:?} is missing metric {:?}",
                o.metric()
            ))
        })?;
        objective_vals.push((o.metric().to_string(), v));
    }
    Ok(EvaluatedPoint {
        spec: spec.to_string(),
        config_key,
        objectives: objective_vals,
        metrics: cell.metrics.clone(),
    })
}

/// Runs a search to completion (or to `kill_after`).
///
/// Determinism contract: for a fixed [`ExploreConfig`], the evaluated
/// sequence, frontier, counters and every rendered artifact are bitwise
/// identical across runs, worker-thread counts, and kill/`--resume`
/// boundaries.
///
/// # Errors
///
/// [`ScenarioError::InvalidOptions`] for an ill-formed config,
/// [`ScenarioError::Journal`] for journal open/append/decode failures.
pub fn explore(cfg: &ExploreConfig) -> Result<ExploreResult, ScenarioError> {
    cfg.validate()?;
    let (journal, prior): (Option<Journal>, HashMap<String, JournalOutcome>) =
        match &cfg.journal_dir {
            Some(dir) => {
                let (j, prior) = Journal::open(dir, &cfg.journal_spec())?;
                (Some(j), prior)
            }
            None => (None, HashMap::new()),
        };

    let cache = EvalCache::new();
    let mut gen = strategy::Generator::new(cfg.space.clone(), cfg.strategy, cfg.seed);
    let mut frontier = Frontier::new();
    let mut evaluated: Vec<EvaluatedPoint> = Vec::new();
    let mut stats = ExploreStats::default();
    let mut journaled_this_run = 0usize;
    let mut killed = false;

    'search: while evaluated.len() < cfg.budget && !gen.exhausted() {
        let want = cfg.batch_size.min(cfg.budget - evaluated.len());
        let batch = gen.next_batch(&frontier, want);
        if batch.is_empty() {
            break;
        }
        stats.generated += batch.len() as u64;

        // Sequential planning pass: validate configs and split the batch
        // into journal-replayed points and fresh work (deterministic
        // invalid/reuse accounting, order preserved).
        enum Slot {
            Reused(EvaluatedPoint),
            Fresh(usize),
        }
        let mut slots = Vec::with_capacity(batch.len());
        let mut fresh = Vec::new();
        for spec in &batch {
            let config = match spec.config() {
                Ok(c) => c,
                Err(_) => {
                    stats.invalid += 1;
                    continue;
                }
            };
            let key = spec.spec_string();
            if let Some(JournalOutcome::Ok(cell)) = prior.get(&key) {
                slots.push(Slot::Reused(point_from_cell(&key, cell, &cfg.objectives)?));
                continue;
            }
            slots.push(Slot::Fresh(fresh.len()));
            fresh.push((key, params::config_key(&config), config));
        }

        // Parallel evaluation over the shared worker pool; the memo cache
        // single-flights duplicate config keys across racing workers.
        let results: Vec<Arc<Vec<(String, f64)>>> = run_parallel(fresh.clone(), |item| {
            let (_, config_key, config) = item;
            if cfg.memo {
                cache
                    .get_or_compute(config_key, || evaluate_config(config, &cfg.workloads))
                    .0
            } else {
                cache.count_uncached();
                Arc::new(evaluate_config(config, &cfg.workloads))
            }
        });

        // Sequential fold: journal fresh points and grow the frontier in
        // candidate order.
        for slot in slots {
            let point = match slot {
                Slot::Reused(p) => {
                    stats.journal_reused += 1;
                    p
                }
                Slot::Fresh(i) => {
                    let (spec, config_key, _) = &fresh[i];
                    let metrics: Vec<(String, f64)> = results[i].as_ref().clone();
                    let objectives = cfg
                        .objectives
                        .iter()
                        .map(|o| {
                            let v = metrics
                                .iter()
                                .find(|(k, _)| k == o.metric())
                                .map(|(_, v)| *v)
                                .expect("evaluate_config emits every objective metric");
                            (o.metric().to_string(), v)
                        })
                        .collect();
                    let point = EvaluatedPoint {
                        spec: spec.clone(),
                        config_key: config_key.clone(),
                        objectives,
                        metrics,
                    };
                    if let Some(j) = &journal {
                        j.append_ok(&point.spec, &cell_for(&point));
                        journaled_this_run += 1;
                    }
                    point
                }
            };
            evaluated.push(point.clone());
            frontier.offer(point);
            if let Some(k) = cfg.kill_after {
                if journaled_this_run >= k {
                    killed = true;
                    break 'search;
                }
            }
        }
        if let Some(err) = journal.as_ref().and_then(Journal::take_error) {
            return Err(err);
        }
    }
    if let Some(err) = journal.as_ref().and_then(Journal::take_error) {
        return Err(err);
    }

    stats.memo = cache.stats();
    Ok(ExploreResult {
        config: cfg.clone(),
        evaluated,
        frontier,
        stats,
        complete: !killed,
    })
}
