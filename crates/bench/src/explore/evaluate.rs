//! Candidate evaluation: objectives, the workload set, and the keyed
//! single-flight memo cache that deduplicates repeated accelerator
//! materializations.
//!
//! The cache key is [`diva_arch::params::config_key`] — the canonical
//! registry rendering of the *resolved* configuration — so two different
//! spec strings that pin the same knobs (or pin a knob to its preset
//! value) share one simulation. Hit accounting is deterministic: every
//! evaluation performs exactly one lookup, and `computed` counts unique
//! keys, which single-flight keeps exact even when racing evaluations
//! request the same key concurrently.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use diva_arch::AcceleratorConfig;
use diva_core::Accelerator;
use diva_energy::EnergyModel;
use diva_workload::{zoo, Algorithm, ModelSpec};

use super::Objective;

/// One workload the objectives are summed over.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Stable slug used in metric names and fingerprints.
    pub slug: String,
    /// The model to train.
    pub model: ModelSpec,
    /// Training algorithm (DP-SGD(R) unless stated otherwise).
    pub algorithm: Algorithm,
    /// Mini-batch size.
    pub batch: u64,
}

impl Workload {
    /// Looks up a zoo model by slug with the explorer's default
    /// algorithm, DP-SGD(R).
    pub fn by_name(name: &str, batch: u64) -> Option<Self> {
        let slug = name.trim().to_ascii_lowercase();
        let model = match slug.as_str() {
            "vgg16" => zoo::vgg16(),
            "resnet50" => zoo::resnet50(),
            "resnet152" => zoo::resnet152(),
            "squeezenet" => zoo::squeezenet(),
            "mobilenet" => zoo::mobilenet(),
            "bert_base" => zoo::bert_base(),
            "bert_large" => zoo::bert_large(),
            "lstm_small" => zoo::lstm_small(),
            "lstm_large" => zoo::lstm_large(),
            _ => return None,
        };
        Some(Self {
            slug,
            model,
            algorithm: Algorithm::DpSgdReweighted,
            batch,
        })
    }

    /// Parses a `name@batch` workload spec (`squeezenet@32`); a bare name
    /// defaults to batch 32.
    ///
    /// # Errors
    ///
    /// Rejects unknown model slugs and unparseable batch sizes.
    pub fn parse(text: &str) -> Result<Self, String> {
        let (name, batch) = match text.split_once('@') {
            Some((n, b)) => {
                let batch: u64 = b
                    .trim()
                    .parse()
                    .map_err(|e| format!("workload {text:?}: bad batch: {e}"))?;
                (n, batch)
            }
            None => (text, 32),
        };
        Self::by_name(name, batch).ok_or_else(|| {
            format!(
                "workload {text:?}: unknown model {:?} (expected one of vgg16, resnet50, \
                 resnet152, squeezenet, mobilenet, bert_base, bert_large, lstm_small, lstm_large)",
                name.trim()
            )
        })
    }

    /// The `name@batch` rendering [`parse`](Self::parse) round-trips.
    pub fn spec_string(&self) -> String {
        format!("{}@{}", self.slug, self.batch)
    }
}

/// Simulates `config` over the workload set and returns the full metric
/// vector in canonical order: the three objective metrics first
/// (`latency_s`, `energy_j`, `area_mm2` — always all three, independent
/// of which objectives the search optimizes), then per-workload seconds
/// and energy.
pub(crate) fn evaluate_config(
    config: &AcceleratorConfig,
    workloads: &[Workload],
) -> Vec<(String, f64)> {
    let accel = Accelerator::from_config("explore", config.clone())
        .expect("candidate configs are validated before dispatch");
    let mut latency_s = 0.0;
    let mut energy_j = 0.0;
    let mut per_workload = Vec::with_capacity(workloads.len() * 2);
    for w in workloads {
        let r = accel.run(&w.model, w.algorithm, w.batch);
        latency_s += r.seconds;
        energy_j += r.energy.total();
        per_workload.push((format!("seconds_{}", w.slug), r.seconds));
        per_workload.push((format!("energy_j_{}", w.slug), r.energy.total()));
    }
    let area_mm2 = EnergyModel::calibrated()
        .synthesis
        .engine_cost_for(config)
        .area_mm2;
    let mut metrics = vec![
        (Objective::Latency.metric().to_string(), latency_s),
        (Objective::Energy.metric().to_string(), energy_j),
        (Objective::Area.metric().to_string(), area_mm2),
    ];
    metrics.extend(per_workload);
    metrics
}

/// Memo-cache counters: `lookups` is one per evaluation request,
/// `computed` one per unique key actually simulated. Both are exact under
/// concurrency (single-flight), so the hit rate
/// `(lookups - computed) / lookups` is deterministic for a fixed
/// candidate sequence.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Evaluation requests routed through the cache.
    pub lookups: u64,
    /// Unique configurations actually simulated.
    pub computed: u64,
}

/// A cached evaluation result: named metrics in render order.
type CachedMetrics = Arc<Vec<(String, f64)>>;

/// A computation slot: the first requester computes, racers park on the
/// condvar until the value lands.
struct Flight {
    done: Mutex<Option<CachedMetrics>>,
    cv: Condvar,
}

/// The keyed single-flight memo cache over candidate evaluations.
pub struct EvalCache {
    state: Mutex<CacheState>,
}

struct CacheState {
    entries: HashMap<String, Arc<Flight>>,
    lookups: u64,
    computed: u64,
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                lookups: 0,
                computed: 0,
            }),
        }
    }

    /// Returns the cached metric vector for `key`, computing it at most
    /// once across all concurrent callers. The second return is `true`
    /// when *this* call performed the computation.
    pub fn get_or_compute(
        &self,
        key: &str,
        compute: impl FnOnce() -> Vec<(String, f64)>,
    ) -> (CachedMetrics, bool) {
        let (flight, owner) = {
            let mut state = self.state.lock().expect("cache mutex");
            state.lookups += 1;
            match state.entries.get(key) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight {
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                    });
                    state.entries.insert(key.to_string(), Arc::clone(&f));
                    state.computed += 1;
                    (f, true)
                }
            }
        };
        if owner {
            let value = Arc::new(compute());
            let mut done = flight.done.lock().expect("flight mutex");
            *done = Some(Arc::clone(&value));
            flight.cv.notify_all();
            return (value, true);
        }
        let mut done = flight.done.lock().expect("flight mutex");
        while done.is_none() {
            done = flight.cv.wait(done).expect("flight condvar");
        }
        (Arc::clone(done.as_ref().expect("flight filled")), false)
    }

    /// Counter-only path for the `memo: false` bench baseline: records
    /// one lookup that always computes, without touching the entry map.
    pub(crate) fn count_uncached(&self) {
        let mut state = self.state.lock().expect("cache mutex");
        state.lookups += 1;
        state.computed += 1;
    }

    /// Snapshot of the hit counters.
    pub fn stats(&self) -> MemoStats {
        let state = self.state.lock().expect("cache mutex");
        MemoStats {
            lookups: state.lookups,
            computed: state.computed,
        }
    }
}

impl Default for EvalCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_parse_round_trips() {
        let w = Workload::parse("squeezenet@8").unwrap();
        assert_eq!(w.slug, "squeezenet");
        assert_eq!(w.batch, 8);
        assert_eq!(w.spec_string(), "squeezenet@8");
        assert_eq!(Workload::parse("bert_base").unwrap().batch, 32);
        assert!(Workload::parse("nope@4").is_err());
        assert!(Workload::parse("squeezenet@x").is_err());
    }

    #[test]
    fn cache_computes_each_key_once() {
        let cache = EvalCache::new();
        let (a, computed_a) = cache.get_or_compute("k", || vec![("m".into(), 1.0)]);
        let (b, computed_b) = cache.get_or_compute("k", || panic!("must not recompute"));
        assert!(computed_a);
        assert!(!computed_b);
        assert_eq!(a, b);
        assert_eq!(
            cache.stats(),
            MemoStats {
                lookups: 2,
                computed: 1
            }
        );
    }

    #[test]
    fn racing_lookups_single_flight_exactly_once() {
        let cache = Arc::new(EvalCache::new());
        let computed = Arc::new(Mutex::new(0u32));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let computed = Arc::clone(&computed);
                s.spawn(move || {
                    for i in 0..32 {
                        let key = format!("k{}", i % 4);
                        let (v, _) = cache.get_or_compute(&key, || {
                            *computed.lock().unwrap() += 1;
                            // Widen the race window.
                            std::thread::yield_now();
                            vec![("m".into(), (i % 4) as f64)]
                        });
                        assert_eq!(v[0].1, (i % 4) as f64);
                    }
                });
            }
        });
        assert_eq!(*computed.lock().unwrap(), 4, "one compute per unique key");
        let stats = cache.stats();
        assert_eq!(stats.lookups, 8 * 32);
        assert_eq!(stats.computed, 4);
    }

    #[test]
    fn evaluate_config_orders_objectives_first() {
        let cfg = diva_core::DesignPoint::Diva.config();
        let w = vec![Workload::parse("squeezenet@4").unwrap()];
        let metrics = evaluate_config(&cfg, &w);
        assert_eq!(metrics[0].0, "latency_s");
        assert_eq!(metrics[1].0, "energy_j");
        assert_eq!(metrics[2].0, "area_mm2");
        assert_eq!(metrics[3].0, "seconds_squeezenet");
        assert_eq!(metrics[4].0, "energy_j_squeezenet");
        assert!(metrics.iter().all(|(_, v)| v.is_finite() && *v > 0.0));
        assert_eq!(metrics[0].1, metrics[3].1, "one workload: sums equal parts");
    }
}
