//! Candidate generation over the 12-knob parameter registry: the search
//! space description plus the three search strategies (exhaustive grid,
//! seeded random sampling, and frontier-guided local refinement).
//!
//! Generation is strictly sequential and fed by one [`DivaRng`] stream,
//! so for a fixed `(space, strategy, seed)` the candidate sequence is
//! identical across runs, thread counts and kill/resume boundaries — the
//! driver only parallelizes *evaluation*, never generation.

use std::collections::HashSet;

use diva_arch::params;
use diva_core::{DesignPoint, DesignSpec};
use diva_tensor::DivaRng;

use super::frontier::Frontier;

/// One searchable knob: a registered parameter name plus the ordered
/// value grid the strategies draw from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Knob {
    /// Registered parameter name (`pe.rows`, `freq_mhz`, ...).
    pub param: String,
    /// Ordered candidate values, as registry-formatted strings.
    pub values: Vec<String>,
}

impl Knob {
    /// Parses a `param=v1|v2|v3` knob description.
    ///
    /// # Errors
    ///
    /// Rejects unknown parameter names and empty value lists.
    pub fn parse(text: &str) -> Result<Self, String> {
        let (param, values) = text
            .split_once('=')
            .ok_or_else(|| format!("knob {text:?}: expected param=v1|v2|..."))?;
        let param = param.trim();
        if !params::is_param(param) {
            return Err(format!(
                "knob {text:?}: unknown parameter {param:?} (see diva-report --params)"
            ));
        }
        let values: Vec<String> = values
            .split('|')
            .map(|v| v.trim().to_string())
            .filter(|v| !v.is_empty())
            .collect();
        if values.is_empty() {
            return Err(format!("knob {text:?}: no values"));
        }
        Ok(Self {
            param: param.to_string(),
            values,
        })
    }
}

/// The search space: a base design point plus the knob grid around it.
#[derive(Clone, Debug)]
pub struct SearchSpace {
    /// Preset every candidate starts from.
    pub base: DesignPoint,
    /// The searchable knobs, in a fixed order.
    pub knobs: Vec<Knob>,
}

impl SearchSpace {
    /// The default six-knob space around the DiVa preset: array shape,
    /// clock, SRAM, drain rate and DRAM bandwidth — 729 grid points.
    pub fn default_space() -> Self {
        let knob = |param: &str, values: &[&str]| Knob {
            param: param.to_string(),
            values: values.iter().map(|v| v.to_string()).collect(),
        };
        Self {
            base: DesignPoint::Diva,
            knobs: vec![
                knob("pe.rows", &["64", "128", "256"]),
                knob("pe.cols", &["64", "128", "256"]),
                knob("freq_mhz", &["470", "940", "1410"]),
                knob("sram_mib", &["8", "16", "32"]),
                knob("drain_rows", &["4", "8", "16"]),
                knob("mem.bandwidth_gbps", &["225", "450", "900"]),
            ],
        }
    }

    /// Number of grid points (product of knob arities).
    pub fn grid_size(&self) -> u128 {
        self.knobs.iter().map(|k| k.values.len() as u128).product()
    }

    /// Materializes the candidate at `choice` (one value index per knob,
    /// every knob pinned so the spec string is canonical).
    pub fn candidate(&self, choice: &[usize]) -> DesignSpec {
        let mut spec = DesignSpec::preset(self.base);
        for (knob, &i) in self.knobs.iter().zip(choice) {
            spec = spec.with(&knob.param, &knob.values[i]);
        }
        spec
    }
}

/// The three search strategies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Exhaustive sweep in odometer order (last knob fastest).
    Grid,
    /// Seeded uniform sampling without replacement.
    Random,
    /// Successive halving: seed with random samples, then spend the rest
    /// of the budget mutating the surviving (frontier) configurations one
    /// knob step at a time, with a trickle of fresh random exploration.
    Halving,
}

impl Strategy {
    /// Stable CLI/JSON slug.
    pub fn slug(self) -> &'static str {
        match self {
            Strategy::Grid => "grid",
            Strategy::Random => "random",
            Strategy::Halving => "halving",
        }
    }

    /// Parses a strategy slug (case-insensitive).
    ///
    /// # Errors
    ///
    /// Lists the valid slugs when `text` matches none of them.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text.to_ascii_lowercase().as_str() {
            "grid" => Ok(Strategy::Grid),
            "random" => Ok(Strategy::Random),
            "halving" => Ok(Strategy::Halving),
            other => Err(format!(
                "unknown strategy {other:?} (expected grid, random or halving)"
            )),
        }
    }
}

/// Retry budget per emitted candidate before random/halving generation
/// concedes the neighborhood is exhausted.
const ATTEMPTS_PER_CANDIDATE: usize = 64;

/// Sequential candidate generator; one per search run.
pub(crate) struct Generator {
    space: SearchSpace,
    strategy: Strategy,
    rng: DivaRng,
    /// Next grid odometer position (grid strategy).
    cursor: u128,
    /// Spec strings already emitted (all strategies sample without
    /// replacement).
    seen: HashSet<String>,
    /// Choice vector per emitted spec, for halving's mutations.
    choices: Vec<(String, Vec<usize>)>,
    exhausted: bool,
}

impl Generator {
    pub(crate) fn new(space: SearchSpace, strategy: Strategy, seed: u64) -> Self {
        Self {
            space,
            strategy,
            rng: DivaRng::seed_from_u64(seed),
            cursor: 0,
            seen: HashSet::new(),
            choices: Vec::new(),
            exhausted: false,
        }
    }

    pub(crate) fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Emits up to `want` fresh candidates; fewer (possibly zero, with
    /// `exhausted` set) when the space or neighborhood runs dry.
    pub(crate) fn next_batch(&mut self, frontier: &Frontier, want: usize) -> Vec<DesignSpec> {
        let mut out = Vec::with_capacity(want);
        while out.len() < want && !self.exhausted {
            let choice = match self.strategy {
                Strategy::Grid => self.next_grid(),
                Strategy::Random => self.next_random(),
                Strategy::Halving => self.next_halving(frontier, out.len()),
            };
            let Some(choice) = choice else {
                self.exhausted = true;
                break;
            };
            let spec = self.space.candidate(&choice);
            let key = spec.spec_string();
            self.seen.insert(key.clone());
            self.choices.push((key, choice));
            out.push(spec);
        }
        out
    }

    fn next_grid(&mut self) -> Option<Vec<usize>> {
        if self.cursor >= self.space.grid_size() {
            return None;
        }
        let mut rem = self.cursor;
        self.cursor += 1;
        let mut choice = vec![0usize; self.space.knobs.len()];
        for (slot, knob) in choice.iter_mut().zip(&self.space.knobs).rev() {
            let arity = knob.values.len() as u128;
            *slot = (rem % arity) as usize;
            rem /= arity;
        }
        Some(choice)
    }

    fn random_choice(&mut self) -> Vec<usize> {
        let arities: Vec<usize> = self.space.knobs.iter().map(|k| k.values.len()).collect();
        arities.into_iter().map(|a| self.rng.index(a)).collect()
    }

    fn is_fresh(&self, choice: &[usize]) -> bool {
        !self
            .seen
            .contains(&self.space.candidate(choice).spec_string())
    }

    fn next_random(&mut self) -> Option<Vec<usize>> {
        for _ in 0..ATTEMPTS_PER_CANDIDATE {
            let choice = self.random_choice();
            if self.is_fresh(&choice) {
                return Some(choice);
            }
        }
        None
    }

    /// One knob nudged one step along its value grid.
    fn mutate(&mut self, parent: &[usize]) -> Vec<usize> {
        let mut child = parent.to_vec();
        let k = self.rng.index(child.len());
        let arity = self.space.knobs[k].values.len();
        if arity > 1 {
            let up = self.rng.index(2) == 0;
            child[k] = if up && child[k] + 1 < arity {
                child[k] + 1
            } else if !up && child[k] > 0 {
                child[k] - 1
            } else if child[k] + 1 < arity {
                child[k] + 1
            } else {
                child[k] - 1
            };
        }
        child
    }

    fn next_halving(&mut self, frontier: &Frontier, emitted: usize) -> Option<Vec<usize>> {
        // Bootstrap round (and a 1-in-4 exploration trickle thereafter):
        // fall back to fresh random samples.
        if frontier.is_empty() || emitted % 4 == 3 {
            return self.next_random();
        }
        // Parent choice vectors for the current survivors, in the
        // frontier's deterministic order.
        let parents: Vec<Vec<usize>> = frontier
            .points()
            .iter()
            .filter_map(|p| {
                self.choices
                    .iter()
                    .find(|(k, _)| *k == p.spec)
                    .map(|(_, c)| c.clone())
            })
            .collect();
        if parents.is_empty() {
            return self.next_random();
        }
        for _ in 0..ATTEMPTS_PER_CANDIDATE {
            let parent = &parents[self.rng.index(parents.len())];
            let child = self.mutate(parent);
            if self.is_fresh(&child) {
                return Some(child);
            }
        }
        // Neighborhood saturated: widen back out to random sampling.
        self.next_random()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_space() -> SearchSpace {
        SearchSpace {
            base: DesignPoint::Diva,
            knobs: vec![
                Knob::parse("pe.rows=64|128").unwrap(),
                Knob::parse("freq_mhz=470|940|1410").unwrap(),
            ],
        }
    }

    #[test]
    fn knob_parse_validates_names_and_values() {
        let k = Knob::parse("sram_mib=8|16|32").unwrap();
        assert_eq!(k.param, "sram_mib");
        assert_eq!(k.values, vec!["8", "16", "32"]);
        assert!(Knob::parse("nope=1|2").is_err());
        assert!(Knob::parse("sram_mib=").is_err());
        assert!(Knob::parse("sram_mib").is_err());
    }

    #[test]
    fn grid_enumerates_every_point_in_odometer_order() {
        let space = tiny_space();
        let mut gen = Generator::new(space.clone(), Strategy::Grid, 0);
        let f = Frontier::new();
        let batch = gen.next_batch(&f, 100);
        assert_eq!(batch.len(), 6);
        assert!(gen.exhausted());
        // Last knob fastest: freq cycles before pe.rows advances.
        assert_eq!(batch[0].spec_string(), "DiVa:pe.rows=64,freq_mhz=470");
        assert_eq!(batch[1].spec_string(), "DiVa:pe.rows=64,freq_mhz=940");
        assert_eq!(batch[3].spec_string(), "DiVa:pe.rows=128,freq_mhz=470");
        let unique: std::collections::HashSet<String> =
            batch.iter().map(DesignSpec::spec_string).collect();
        assert_eq!(unique.len(), 6);
    }

    #[test]
    fn random_samples_without_replacement_and_exhausts() {
        let mut gen = Generator::new(tiny_space(), Strategy::Random, 7);
        let f = Frontier::new();
        let batch = gen.next_batch(&f, 100);
        assert_eq!(batch.len(), 6, "tiny space fully sampled");
        assert!(gen.exhausted());
        let unique: std::collections::HashSet<String> =
            batch.iter().map(DesignSpec::spec_string).collect();
        assert_eq!(unique.len(), 6);
    }

    #[test]
    fn random_sequence_is_seed_deterministic_and_batch_size_independent() {
        let space = SearchSpace::default_space();
        let f = Frontier::new();
        let mut one = Generator::new(space.clone(), Strategy::Random, 42);
        let whole: Vec<String> = one
            .next_batch(&f, 24)
            .iter()
            .map(DesignSpec::spec_string)
            .collect();
        let mut two = Generator::new(space, Strategy::Random, 42);
        let mut pieces = Vec::new();
        for _ in 0..4 {
            pieces.extend(two.next_batch(&f, 6).iter().map(DesignSpec::spec_string));
        }
        assert_eq!(whole, pieces);
    }

    #[test]
    fn mutation_moves_exactly_one_knob_one_step() {
        let space = SearchSpace::default_space();
        let mut gen = Generator::new(space, Strategy::Halving, 3);
        let parent = vec![1usize; 6];
        for _ in 0..64 {
            let child = gen.mutate(&parent);
            let diffs: Vec<(usize, usize)> = parent
                .iter()
                .zip(&child)
                .filter(|(a, b)| a != b)
                .map(|(a, b)| (*a, *b))
                .collect();
            assert_eq!(diffs.len(), 1);
            let (a, b) = diffs[0];
            assert_eq!(a.abs_diff(b), 1);
        }
    }
}
