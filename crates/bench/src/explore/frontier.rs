//! The exact Pareto frontier over evaluated design points.
//!
//! All objectives are *minimized*. A point `a` **dominates** `b` when it
//! is no worse on every objective and strictly better on at least one.
//! The frontier is maintained incrementally: an incoming point is pruned
//! if any resident dominates it, otherwise it evicts every resident it
//! dominates and joins. Because dominance is transitive, every point ever
//! pruned (directly, or via eviction of the resident that dominated it)
//! is dominated by some *final* frontier member — the property the seeded
//! tests in `tests/explore_tests.rs` verify.
//!
//! Determinism: membership is a pure function of the evaluated set
//! (insertion order cannot change *what* survives, only the transient
//! path), and residents are kept sorted by `(objective vector, candidate
//! spec)` with [`f64::total_cmp`], so iteration order — and therefore
//! every rendered artifact — is bitwise identical across thread counts
//! and across kill/resume boundaries.

use std::cmp::Ordering;

use super::EvaluatedPoint;

/// `true` when `a` Pareto-dominates `b` (minimization: `a` is ≤
/// everywhere and < somewhere). Slices must be equal length.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Deterministic frontier ordering: objective vector lexicographically
/// (via `total_cmp`), ties broken by the candidate spec string.
pub fn point_order(a: &EvaluatedPoint, b: &EvaluatedPoint) -> Ordering {
    for ((_, x), (_, y)) in a.objectives.iter().zip(&b.objectives) {
        match x.total_cmp(y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    a.spec.cmp(&b.spec)
}

/// The incrementally-maintained exact Pareto frontier.
#[derive(Clone, Debug, Default)]
pub struct Frontier {
    points: Vec<EvaluatedPoint>,
}

impl Frontier {
    /// An empty frontier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers a point. Returns `true` if it joined the frontier (possibly
    /// evicting dominated residents), `false` if a resident dominates it.
    /// Duplicate specs are rejected idempotently.
    pub fn offer(&mut self, point: EvaluatedPoint) -> bool {
        if self.points.iter().any(|p| p.spec == point.spec) {
            return false;
        }
        let vals = point.objective_values();
        if self
            .points
            .iter()
            .any(|p| dominates(&p.objective_values(), &vals))
        {
            return false;
        }
        self.points
            .retain(|p| !dominates(&vals, &p.objective_values()));
        let at = self
            .points
            .partition_point(|p| point_order(p, &point) == Ordering::Less);
        self.points.insert(at, point);
        true
    }

    /// The frontier members, in the deterministic `(objectives, spec)`
    /// order.
    pub fn points(&self) -> &[EvaluatedPoint] {
        &self.points
    }

    /// Number of frontier members.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no point has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(spec: &str, vals: &[f64]) -> EvaluatedPoint {
        EvaluatedPoint {
            spec: spec.to_string(),
            config_key: spec.to_string(),
            objectives: vals
                .iter()
                .enumerate()
                .map(|(i, v)| (format!("o{i}"), *v))
                .collect(),
            metrics: Vec::new(),
        }
    }

    #[test]
    fn dominance_is_strict_somewhere() {
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(dominates(&[0.5, 2.0], &[1.0, 2.0]));
        assert!(
            !dominates(&[1.0, 2.0], &[1.0, 2.0]),
            "equal never dominates"
        );
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]), "incomparable");
        assert!(!dominates(&[2.0, 2.0], &[1.0, 3.0]), "incomparable");
    }

    #[test]
    fn frontier_prunes_and_evicts() {
        let mut f = Frontier::new();
        assert!(f.offer(pt("a", &[2.0, 2.0])));
        assert!(f.offer(pt("b", &[1.0, 3.0])), "incomparable point joins");
        assert!(!f.offer(pt("c", &[3.0, 3.0])), "dominated point pruned");
        assert!(f.offer(pt("d", &[1.0, 1.0])), "dominator joins");
        // d dominates both a and b.
        assert_eq!(f.len(), 1);
        assert_eq!(f.points()[0].spec, "d");
    }

    #[test]
    fn equal_vectors_coexist_in_spec_order() {
        let mut f = Frontier::new();
        assert!(f.offer(pt("zz", &[1.0, 2.0])));
        assert!(f.offer(pt("aa", &[1.0, 2.0])));
        let specs: Vec<&str> = f.points().iter().map(|p| p.spec.as_str()).collect();
        assert_eq!(specs, vec!["aa", "zz"]);
        // Re-offering an existing spec is a no-op.
        assert!(!f.offer(pt("aa", &[1.0, 2.0])));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn membership_is_insertion_order_independent() {
        let points = [
            ("a", [3.0, 1.0]),
            ("b", [1.0, 3.0]),
            ("c", [2.0, 2.0]),
            ("d", [2.5, 2.5]),
            ("e", [0.5, 4.0]),
            ("f", [3.0, 1.0]),
        ];
        let build = |order: &[usize]| {
            let mut f = Frontier::new();
            for &i in order {
                let (s, v) = points[i];
                f.offer(pt(s, &v));
            }
            f.points()
                .iter()
                .map(|p| p.spec.clone())
                .collect::<Vec<_>>()
        };
        let forward = build(&[0, 1, 2, 3, 4, 5]);
        let reverse = build(&[5, 4, 3, 2, 1, 0]);
        let shuffled = build(&[3, 0, 5, 2, 4, 1]);
        assert_eq!(forward, reverse);
        assert_eq!(forward, shuffled);
    }
}
