//! The incremental checkpoint/resume artifact store behind
//! `diva-report --resume <dir>`.
//!
//! One journal file per scenario, `<dir>/<scenario>.journal.jsonl`: a
//! header line identifying (scenario, overrides, code-version
//! fingerprint), then one flat JSON record per **supervised cell
//! outcome**, appended and flushed the moment the cell finishes. Records
//! hold the raw pre-derivation cell (metrics exactly as evaluated,
//! including hidden baseline arms); derived metrics and reductions are
//! recomputed on every run, and `f64`'s `Display` is round-trip exact, so
//! a resumed run's artifact is byte-identical to a fresh one.
//!
//! Recovery: a process killed mid-append leaves a truncated final line.
//! The loader parses line by line and treats a malformed **final** record
//! as the kill point — everything before it is reused, the torn cell
//! re-runs. A malformed record *followed by* well-formed ones is real
//! corruption and errors instead. The header's fingerprint hashes the
//! scenario's effective shape (axes, derived rules, overrides) plus the
//! crate version; resuming against a journal written by different code or
//! flags is refused rather than silently mixed.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use super::error::{FailKind, ScenarioError};
use super::Cell;
use crate::faults::fnv1a64;
use crate::perf::{json_string, parse_record, PerfRecord};

/// The journal file's schema tag.
pub const JOURNAL_SCHEMA: &str = "diva-journal/v1";

/// Note keys are prefixed in journal records so a scenario note can never
/// collide with the reserved `key`/`status`/`error`/`attempts` tags.
const NOTE_PREFIX: &str = "n:";

/// What the journal remembers about one supervised cell.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalOutcome {
    /// The cell completed; its raw evaluated state is reusable.
    Ok(Cell),
    /// The cell failed terminally on a previous run; it re-runs on resume.
    Failed {
        /// Terminal classification.
        kind: FailKind,
        /// Last attempt's error message.
        error: String,
        /// Attempts the previous run made.
        attempts: u32,
    },
}

/// Identity of the run a journal belongs to; all three fields must match
/// for a resume to reuse the file.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalSpec {
    /// Scenario registry name.
    pub scenario: String,
    /// Code-version fingerprint (see [`fingerprint_hex`]).
    pub fingerprint: String,
    /// The run's `--set` overrides, joined `k=v,k=v` (empty when none).
    pub overrides: String,
}

/// Hashes the parts identifying a run's effective shape into the header
/// fingerprint. Includes the journal schema and crate version so a code
/// upgrade invalidates old journals.
pub fn fingerprint_hex(parts: &[String]) -> String {
    let mut bytes: Vec<&[u8]> = vec![
        JOURNAL_SCHEMA.as_bytes(),
        env!("CARGO_PKG_VERSION").as_bytes(),
    ];
    bytes.extend(parts.iter().map(|p| p.as_bytes()));
    format!("{:016x}", fnv1a64(&bytes))
}

/// An open, append-mode journal for one scenario run.
///
/// Appends happen from inside pool workers (the supervisor journals each
/// cell the moment it settles), so the writer sits behind a mutex and I/O
/// failures are stashed rather than panicked — the runner collects them
/// after the region via [`Journal::take_error`].
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    writer: Mutex<File>,
    first_error: Mutex<Option<String>>,
}

impl Journal {
    /// The journal path for `scenario` under `dir`.
    pub fn path_for(dir: &Path, scenario: &str) -> PathBuf {
        dir.join(format!("{scenario}.journal.jsonl"))
    }

    /// Opens (or creates) the journal for `spec` under `dir`, returning
    /// the reusable outcomes of previous runs keyed by cell key. A
    /// missing or empty file starts fresh; an existing file must carry a
    /// matching header.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Journal`] on header/fingerprint mismatch or
    /// mid-file corruption; [`ScenarioError::Io`] on filesystem failure.
    pub fn open(
        dir: &Path,
        spec: &JournalSpec,
    ) -> Result<(Self, HashMap<String, JournalOutcome>), ScenarioError> {
        std::fs::create_dir_all(dir).map_err(|e| ScenarioError::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        let path = Self::path_for(dir, &spec.scenario);
        let io_err = |e: std::io::Error| ScenarioError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        let existing = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(io_err(e)),
        };
        let cached = if existing.trim().is_empty() {
            HashMap::new()
        } else {
            let cached = load_entries(&existing, spec, &path)?;
            // A kill mid-append leaves a torn final line. The loader
            // already skipped it; also rewrite the file to the valid
            // prefix so this run's appends don't concatenate onto the
            // torn bytes (which would read as *interior* corruption —
            // unrecoverable — next time).
            let valid = valid_prefix_len(&existing);
            if valid < existing.len() {
                std::fs::write(&path, &existing[..valid]).map_err(io_err)?;
            }
            cached
        };
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(io_err)?;
        if existing.trim().is_empty() {
            let header = header_line(spec);
            file.write_all(header.as_bytes()).map_err(io_err)?;
            file.flush().map_err(io_err)?;
        }
        Ok((
            Self {
                path,
                writer: Mutex::new(file),
                first_error: Mutex::new(None),
            },
            cached,
        ))
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends a completed cell's raw state and flushes.
    pub fn append_ok(&self, key: &str, cell: &Cell) {
        let mut line = String::new();
        let _ = write!(
            line,
            "{{\"name\": \"cell\", \"key\": {}, \"status\": \"ok\"",
            json_string(key)
        );
        for (k, v) in &cell.notes {
            let _ = write!(
                line,
                ", {}: {}",
                json_string(&format!("{NOTE_PREFIX}{k}")),
                { json_string(v) }
            );
        }
        for (k, v) in &cell.metrics {
            let _ = write!(line, ", {}: {v}", json_string(k));
        }
        line.push_str("}\n");
        self.append_line(&line);
    }

    /// Appends a terminal cell failure and flushes.
    pub fn append_failure(&self, key: &str, kind: FailKind, error: &str, attempts: u32) {
        let line = format!(
            "{{\"name\": \"cell\", \"key\": {}, \"status\": {}, \"error\": {}, \"attempts\": {}}}\n",
            json_string(key),
            json_string(kind.slug()),
            json_string(error),
            json_string(&attempts.to_string()),
        );
        self.append_line(&line);
    }

    fn append_line(&self, line: &str) {
        let mut file = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let result = file
            .write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| e.to_string());
        if let Err(msg) = result {
            let mut slot = self.first_error.lock().unwrap_or_else(|e| e.into_inner());
            slot.get_or_insert(msg);
        }
    }

    /// The first append failure, if any — checked by the runner after the
    /// evaluation region so worker-side I/O errors surface as
    /// [`ScenarioError::Io`] instead of being dropped.
    pub fn take_error(&self) -> Option<ScenarioError> {
        let mut slot = self.first_error.lock().unwrap_or_else(|e| e.into_inner());
        slot.take().map(|message| ScenarioError::Io {
            path: self.path.display().to_string(),
            message,
        })
    }
}

fn header_line(spec: &JournalSpec) -> String {
    format!(
        "{{\"name\": \"journal\", \"schema\": {}, \"scenario\": {}, \"fingerprint\": {}, \"overrides\": {}}}\n",
        json_string(JOURNAL_SCHEMA),
        json_string(&spec.scenario),
        json_string(&spec.fingerprint),
        json_string(&spec.overrides),
    )
}

/// Parses the body of a journal file (header + cell records), enforcing
/// the spec match and tolerating a truncated final line.
fn load_entries(
    text: &str,
    spec: &JournalSpec,
    path: &Path,
) -> Result<HashMap<String, JournalOutcome>, ScenarioError> {
    let journal_err = |msg: String| ScenarioError::Journal(format!("{}: {msg}", path.display()));
    let lines: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect();
    let header = parse_line(lines[0]).map_err(|e| journal_err(format!("malformed header: {e}")))?;
    if header.name != "journal" || header.tag_value("schema") != Some(JOURNAL_SCHEMA) {
        return Err(journal_err(format!(
            "not a {JOURNAL_SCHEMA} journal header: {:?}",
            lines[0]
        )));
    }
    for (field, want) in [
        ("scenario", spec.scenario.as_str()),
        ("fingerprint", spec.fingerprint.as_str()),
        ("overrides", spec.overrides.as_str()),
    ] {
        let have = header.tag_value(field).unwrap_or("<missing>");
        if have != want {
            return Err(journal_err(format!(
                "{field} mismatch: journal has {have:?}, this run wants {want:?} \
                 (resume must use the same scenario, overrides and code version; \
                 delete the journal to start over)"
            )));
        }
    }
    let mut entries = HashMap::new();
    for (i, line) in lines.iter().enumerate().skip(1) {
        let record = match parse_line(line) {
            Ok(r) => r,
            // A torn final line is the kill point — recover by re-running
            // that cell. Torn *interior* lines mean real corruption.
            Err(_) if i + 1 == lines.len() => break,
            Err(e) => {
                return Err(journal_err(format!(
                    "corrupt record on line {}: {e}",
                    i + 1
                )))
            }
        };
        if record.name != "cell" {
            return Err(journal_err(format!(
                "unexpected record {:?} on line {}",
                record.name,
                i + 1
            )));
        }
        let Some(key) = record.tag_value("key") else {
            return Err(journal_err(format!(
                "cell record without key on line {}",
                i + 1
            )));
        };
        let outcome = match record.tag_value("status") {
            Some("ok") => JournalOutcome::Ok(cell_from_record(&record)),
            Some(status) => match FailKind::from_slug(status) {
                Some(kind) => JournalOutcome::Failed {
                    kind,
                    error: record.tag_value("error").unwrap_or_default().to_string(),
                    attempts: record
                        .tag_value("attempts")
                        .and_then(|a| a.parse().ok())
                        .unwrap_or(1),
                },
                None => {
                    return Err(journal_err(format!(
                        "unknown cell status {status:?} on line {}",
                        i + 1
                    )))
                }
            },
            None => {
                return Err(journal_err(format!(
                    "cell record without status on line {}",
                    i + 1
                )))
            }
        };
        // Last record per key wins: a resumed run re-appends the cells it
        // re-ran, superseding earlier (e.g. failed) entries.
        entries.insert(key.to_string(), outcome);
    }
    Ok(entries)
}

/// Byte length of the leading well-formed prefix: newline-terminated,
/// parseable lines. Anything beyond (a torn final line, or bytes with no
/// trailing newline) is the kill point and gets dropped on open.
fn valid_prefix_len(text: &str) -> usize {
    let mut end = 0;
    while let Some(nl) = text[end..].find('\n') {
        let line = text[end..end + nl].trim();
        if !line.is_empty() && parse_line(line).is_err() {
            break;
        }
        end += nl + 1;
    }
    end
}

/// Parses one journal line as a flat record, rejecting non-finite metric
/// values (they cannot be journaled faithfully and mark torn writes).
fn parse_line(line: &str) -> Result<PerfRecord, String> {
    let body = line
        .strip_prefix('{')
        .and_then(|l| l.strip_suffix('}'))
        .ok_or_else(|| "not a JSON object".to_string())?;
    let record = parse_record(body)?;
    for (k, v) in &record.metrics {
        if !v.is_finite() {
            return Err(format!("non-finite value for {k:?}"));
        }
    }
    Ok(record)
}

fn cell_from_record(record: &PerfRecord) -> Cell {
    Cell {
        metrics: record.metrics.clone(),
        notes: record
            .tags
            .iter()
            .filter_map(|(k, v)| {
                k.strip_prefix(NOTE_PREFIX)
                    .map(|name| (name.to_string(), v.clone()))
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JournalSpec {
        JournalSpec {
            scenario: "toy".to_string(),
            fingerprint: fingerprint_hex(&["toy".to_string(), "axes".to_string()]),
            overrides: String::new(),
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("diva-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_cell() -> Cell {
        Cell {
            metrics: vec![
                ("v".to_string(), 1.0 / 3.0),
                ("latency_ms".to_string(), 12.5),
            ],
            notes: vec![("policy".to_string(), "B=8".to_string())],
        }
    }

    #[test]
    fn round_trips_ok_and_failed_cells_exactly() {
        let dir = tempdir("roundtrip");
        let spec = spec();
        {
            let (journal, cached) = Journal::open(&dir, &spec).expect("fresh open");
            assert!(cached.is_empty());
            journal.append_ok("model=m0|point=p0", &sample_cell());
            journal.append_failure("model=m1|point=p0", FailKind::Panicked, "boom", 2);
            assert!(journal.take_error().is_none());
        }
        let (_journal, cached) = Journal::open(&dir, &spec).expect("re-open");
        assert_eq!(cached.len(), 2);
        assert_eq!(
            cached["model=m0|point=p0"],
            JournalOutcome::Ok(sample_cell()),
            "metrics (incl. 1/3) and notes must round-trip exactly"
        );
        assert_eq!(
            cached["model=m1|point=p0"],
            JournalOutcome::Failed {
                kind: FailKind::Panicked,
                error: "boom".to_string(),
                attempts: 2,
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn later_records_supersede_earlier_ones() {
        let dir = tempdir("supersede");
        let spec = spec();
        {
            let (journal, _) = Journal::open(&dir, &spec).expect("open");
            journal.append_failure("k", FailKind::Invalid, "NaN", 1);
            journal.append_ok("k", &sample_cell());
        }
        let (_j, cached) = Journal::open(&dir, &spec).expect("re-open");
        assert_eq!(cached["k"], JournalOutcome::Ok(sample_cell()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_final_line_recovers_interior_corruption_errors() {
        let dir = tempdir("truncate");
        let spec = spec();
        {
            let (journal, _) = Journal::open(&dir, &spec).expect("open");
            journal.append_ok("a", &sample_cell());
            journal.append_ok("b", &sample_cell());
        }
        let path = Journal::path_for(&dir, &spec.scenario);
        let full = std::fs::read_to_string(&path).expect("read");
        // Chop the last record mid-way: the kill-point cell re-runs, the
        // rest is reused.
        let cut = full.rfind("\"status\"").expect("has records");
        std::fs::write(&path, &full[..cut]).expect("truncate");
        {
            let (journal, cached) = Journal::open(&dir, &spec).expect("truncated journal recovers");
            assert_eq!(cached.len(), 1);
            assert!(cached.contains_key("a"));
            // Open must have dropped the torn bytes: appending the re-run
            // cell now keeps the file loadable (torn tail + append would
            // otherwise read as interior corruption next time).
            journal.append_ok("b", &sample_cell());
        }
        let (_j, cached) = Journal::open(&dir, &spec).expect("post-recovery append loads");
        assert_eq!(cached.len(), 2);
        // Interior corruption is not recoverable.
        let lines: Vec<&str> = full.lines().collect();
        let corrupted = format!(
            "{}\n{}\n{}\n",
            lines[0], "{\"name\": \"cell\", gar", lines[2]
        );
        std::fs::write(&path, corrupted).expect("corrupt");
        let err = Journal::open(&dir, &spec).expect_err("interior corruption");
        assert!(err.to_string().contains("corrupt record"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_is_refused_with_guidance() {
        let dir = tempdir("fingerprint");
        let spec = spec();
        {
            let _ = Journal::open(&dir, &spec).expect("open");
        }
        let other = JournalSpec {
            fingerprint: fingerprint_hex(&["different".to_string()]),
            ..spec
        };
        let err = Journal::open(&dir, &other).expect_err("mismatch");
        assert_eq!(err.exit_code(), 4);
        let text = err.to_string();
        assert!(text.contains("fingerprint mismatch"), "{text}");
        assert!(text.contains("delete the journal"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_or_missing_file_starts_fresh() {
        let dir = tempdir("fresh");
        let spec = spec();
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(Journal::path_for(&dir, &spec.scenario), "").expect("touch");
        let (_j, cached) = Journal::open(&dir, &spec).expect("empty file is fresh");
        assert!(cached.is_empty());
        // The fresh open wrote a header, so a re-open parses it.
        let (_j, cached) = Journal::open(&dir, &spec).expect("header written");
        assert!(cached.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprints_separate_parts() {
        assert_ne!(
            fingerprint_hex(&["ab".to_string(), "c".to_string()]),
            fingerprint_hex(&["a".to_string(), "bc".to_string()])
        );
    }
}
