//! The declarative **scenario/experiment API** behind every paper artifact.
//!
//! Every figure, table and ablation of the evaluation is expressed as one
//! [`Experiment`]: a set of named [`Axis`] definitions (models, design
//! points, algorithms, batches, …), a per-grid-cell evaluation closure
//! returning a typed [`Cell`], a list of declared [`Normalize`] rules that
//! derive ratio metrics against a baseline arm (speedups, normalized
//! energy/memory/latency), and a list of declared [`Reduction`]s
//! (mean/geomean/max summaries, optionally grouped and filtered). A single
//! [`runner`] executes the grid deterministically over the workspace-wide
//! keep-alive pool and renders the result as an aligned text table
//! ([`render`]), machine-readable JSON ([`json`], schema
//! `diva-scenario/v1`, reusing the flat-record conventions of
//! [`crate::perf`]) or CSV.
//!
//! The [`registry`] names every paper artifact; the `diva-report` binary
//! drives it from the command line:
//!
//! ```text
//! diva-report --list
//! diva-report fig13 --json out.json --models mobilenet,vgg16 --points ws,diva
//! ```
//!
//! Axis filters (`--models`, `--points`, `--algs`, `--batch`,
//! `--axis NAME=a,b`) restrict any registered scenario without
//! per-scenario code. Filter labels are matched case-insensitively with
//! punctuation stripped, so `--points diva-w/o-ppu` matches the
//! `"DiVa w/o PPU"` arm. When a filter removes an arm that a [`Normalize`]
//! rule needs as its baseline, the runner still *evaluates* that arm
//! (hidden from the output) so derived metrics stay available.
//!
//! The legacy per-figure binaries in `src/bin/` are thin shims over
//! [`run`], so `cargo run --bin fig13_end_to_end_speedup` keeps working.

pub mod compare;
pub mod error;
pub mod journal;
pub mod json;
pub mod registry;
pub mod render;
pub mod runner;
pub mod supervisor;

mod defs;

use std::sync::Arc;

use diva_core::{Accelerator, RunReport};
use diva_workload::{Algorithm, ModelSpec};

pub use error::{CellFailure, FailKind, ScenarioError};
pub use registry::{find, list, run, run_with, ScenarioInfo};
pub use runner::{
    run_experiment, AxisMeta, ResultRow, RowStatus, RunOptions, ScenarioResult, Summary,
};

/// How the mini-batch of a grid cell is chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSpec {
    /// The paper's batch policy ([`crate::paper_batch`]): the largest
    /// power-of-two mini-batch vanilla DP-SGD fits in 16 GB, resolved per
    /// model.
    Paper,
    /// A fixed explicit batch size.
    Fixed(u64),
}

/// The typed payload carried by one axis value, consumed by the
/// experiment's evaluation closure through [`CellCtx`].
#[derive(Clone, Debug)]
pub enum Payload {
    /// A workload model (axis conventionally named `"model"`).
    Model(Box<ModelSpec>),
    /// A fully built accelerator (axis conventionally named `"point"`).
    Accel(Arc<Accelerator>),
    /// A training algorithm (axis conventionally named `"algorithm"`).
    Algorithm(Algorithm),
    /// A batch policy (axis conventionally named `"batch"`).
    Batch(BatchSpec),
    /// A named number (SRAM bytes, image side, sequence length, …).
    Num(f64),
    /// A bare label; the evaluation closure interprets it.
    Label,
    /// A **config axis** value: `(parameter name, value string)` pairs
    /// resolved through the `diva_arch::params` registry. The runner
    /// materializes each cell's accelerator by applying these overrides to
    /// the cell's accelerator-axis arm (validated, never panicking), so
    /// any registered Table II knob is sweepable — this is what the CLI's
    /// `--sweep key=v1,v2` injects and what the `dse_*` scenarios declare.
    Overrides(Vec<(String, String)>),
}

/// One value of an [`Axis`]: a display/filter label plus a typed payload.
#[derive(Clone, Debug)]
pub struct AxisValue {
    /// The label shown in tables and matched (normalized) by CLI filters.
    pub label: String,
    /// The typed payload behind the label.
    pub payload: Payload,
}

impl AxisValue {
    /// A model value labelled with the model's name.
    pub fn model(spec: ModelSpec) -> Self {
        Self {
            label: spec.name.clone(),
            payload: Payload::Model(Box::new(spec)),
        }
    }

    /// An accelerator value labelled with the accelerator's name.
    pub fn accel(accel: Accelerator) -> Self {
        Self {
            label: accel.name().to_string(),
            payload: Payload::Accel(Arc::new(accel)),
        }
    }

    /// An algorithm value labelled with the paper's algorithm label.
    pub fn algorithm(alg: Algorithm) -> Self {
        Self {
            label: alg.label().to_string(),
            payload: Payload::Algorithm(alg),
        }
    }

    /// The paper batch policy, labelled `"paper"`.
    pub fn batch_paper() -> Self {
        Self {
            label: "paper".to_string(),
            payload: Payload::Batch(BatchSpec::Paper),
        }
    }

    /// A fixed batch size, labelled with its decimal value.
    pub fn batch(b: u64) -> Self {
        Self {
            label: b.to_string(),
            payload: Payload::Batch(BatchSpec::Fixed(b)),
        }
    }

    /// A labelled number.
    pub fn num(label: impl Into<String>, value: f64) -> Self {
        Self {
            label: label.into(),
            payload: Payload::Num(value),
        }
    }

    /// A bare label.
    pub fn label(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            payload: Payload::Label,
        }
    }

    /// A config-axis value: named parameter overrides applied to the
    /// cell's accelerator arm (see [`Payload::Overrides`]).
    pub fn overrides(label: impl Into<String>, pairs: &[(&str, &str)]) -> Self {
        Self {
            label: label.into(),
            payload: Payload::Overrides(
                pairs
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect(),
            ),
        }
    }
}

/// One named axis of an experiment's sweep grid.
#[derive(Clone, Debug)]
pub struct Axis {
    /// Axis name; `"model"`, `"point"`, `"algorithm"` and `"batch"` have
    /// dedicated CLI flags, any other name is reachable via `--axis`.
    pub name: String,
    /// The values swept along this axis, in presentation order.
    pub values: Vec<AxisValue>,
}

impl Axis {
    /// Builds an axis from a value iterator.
    pub fn new(name: impl Into<String>, values: impl IntoIterator<Item = AxisValue>) -> Self {
        Self {
            name: name.into(),
            values: values.into_iter().collect(),
        }
    }
}

/// The evaluation result of one grid cell: named numeric metrics plus
/// optional string-valued annotations (GEMM shape strings, bound labels).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Cell {
    /// Numeric metrics, e.g. `("seconds", 1.2e-3)`.
    pub metrics: Vec<(String, f64)>,
    /// String annotations, e.g. `("gemm", "(32, 9, 64)")`.
    pub notes: Vec<(String, String)>,
}

impl Cell {
    /// An empty cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a numeric metric (builder style).
    pub fn metric(mut self, key: impl Into<String>, value: f64) -> Self {
        self.metrics.push((key.into(), value));
        self
    }

    /// Adds a string annotation (builder style).
    pub fn note(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.notes.push((key.into(), value.into()));
        self
    }

    /// The value of metric `key`, if present.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

impl From<&RunReport> for Cell {
    /// Bridges a simulated training step into a cell, importing the full
    /// [`RunReport::flat_metrics`] set (timing, energy, traffic, per-phase
    /// cycles).
    fn from(report: &RunReport) -> Self {
        Cell {
            metrics: report.flat_metrics(),
            notes: Vec::new(),
        }
    }
}

/// The coordinates of one grid cell, handed to the evaluation closure.
#[derive(Clone, Debug)]
pub struct CellCtx<'a> {
    /// `(axis name, axis value)` pairs in axis-declaration order.
    pub coords: Vec<(&'a str, &'a AxisValue)>,
    /// The accelerator materialized for this cell when any coordinate is a
    /// config-axis value ([`Payload::Overrides`]): the accelerator-axis
    /// arm with the cell's overrides applied and validated. `None` on
    /// grids without config axes.
    pub accel_override: Option<Arc<Accelerator>>,
}

impl CellCtx<'_> {
    /// The value of axis `axis`.
    ///
    /// # Panics
    ///
    /// Panics if the experiment has no such axis (a scenario-definition
    /// bug, not a user error).
    pub fn value(&self, axis: &str) -> &AxisValue {
        self.coords
            .iter()
            .find(|(name, _)| *name == axis)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("experiment has no axis named {axis:?}"))
    }

    /// The label of axis `axis`.
    ///
    /// # Panics
    ///
    /// Panics if the experiment has no such axis.
    pub fn label(&self, axis: &str) -> &str {
        &self.value(axis).label
    }

    /// The model carried by the `"model"` axis.
    ///
    /// # Panics
    ///
    /// Panics if there is no `"model"` axis or its values are not
    /// [`Payload::Model`].
    pub fn model(&self) -> &ModelSpec {
        match &self.value("model").payload {
            Payload::Model(m) => m,
            other => panic!("axis \"model\" does not carry ModelSpec payloads: {other:?}"),
        }
    }

    /// The cell's accelerator: the config-axis materialization when any
    /// coordinate carries [`Payload::Overrides`], otherwise the arm of the
    /// `"point"` axis, otherwise the first coordinate carrying a
    /// [`Payload::Accel`] value (so axes named `"engine"` or `"device"`
    /// work too).
    ///
    /// # Panics
    ///
    /// Panics if there is no materialized accelerator and no coordinate
    /// carries [`Payload::Accel`] values.
    pub fn accel(&self) -> &Accelerator {
        if let Some(accel) = &self.accel_override {
            return accel;
        }
        if let Some((_, v)) = self.coords.iter().find(|(name, _)| *name == "point") {
            match &v.payload {
                Payload::Accel(a) => return a,
                other => panic!("axis \"point\" does not carry Accelerator payloads: {other:?}"),
            }
        }
        self.coords
            .iter()
            .find_map(|(_, v)| match &v.payload {
                Payload::Accel(a) => Some(a.as_ref()),
                _ => None,
            })
            .unwrap_or_else(|| panic!("cell has no accelerator coordinate: {:?}", self.coords))
    }

    /// The algorithm carried by the `"algorithm"` axis.
    ///
    /// # Panics
    ///
    /// Panics if there is no `"algorithm"` axis or its values are not
    /// [`Payload::Algorithm`].
    pub fn algorithm(&self) -> Algorithm {
        match &self.value("algorithm").payload {
            Payload::Algorithm(a) => *a,
            other => panic!("axis \"algorithm\" does not carry Algorithm payloads: {other:?}"),
        }
    }

    /// The number carried by axis `axis`.
    ///
    /// # Panics
    ///
    /// Panics if the axis is missing or its values are not [`Payload::Num`].
    pub fn num(&self, axis: &str) -> f64 {
        match &self.value(axis).payload {
            Payload::Num(v) => *v,
            other => panic!("axis {axis:?} does not carry numeric payloads: {other:?}"),
        }
    }

    /// The cell's batch policy: the `"batch"` axis value if present,
    /// otherwise [`BatchSpec::Paper`].
    ///
    /// # Panics
    ///
    /// Panics if a `"batch"` axis exists but does not carry
    /// [`Payload::Batch`] values.
    pub fn batch_spec(&self) -> BatchSpec {
        self.coords
            .iter()
            .find(|(name, _)| *name == "batch")
            .map(|(_, v)| match &v.payload {
                Payload::Batch(spec) => *spec,
                other => panic!("axis \"batch\" does not carry BatchSpec payloads: {other:?}"),
            })
            .unwrap_or(BatchSpec::Paper)
    }

    /// Resolves the cell's mini-batch for `model`: the `"batch"` axis value
    /// if present ([`BatchSpec::Paper`] applies [`crate::paper_batch`] to
    /// `model`), otherwise the paper policy.
    pub fn batch_for(&self, model: &ModelSpec) -> u64 {
        match self.batch_spec() {
            BatchSpec::Paper => crate::paper_batch(model),
            BatchSpec::Fixed(b) => b,
        }
    }

    /// Resolves the cell's mini-batch for the model on the `"model"` axis.
    ///
    /// # Panics
    ///
    /// Panics if the batch policy is [`BatchSpec::Paper`] and there is no
    /// `"model"` axis carrying [`Payload::Model`] values.
    pub fn batch(&self) -> u64 {
        self.batch_for(self.model())
    }
}

/// How a [`Normalize`] rule names its derived metrics.
#[derive(Clone, Debug)]
pub enum Rename {
    /// Appends a suffix: metric `m` derives `m<suffix>`.
    Suffix(String),
    /// Replaces the name outright; valid only for single-metric rules.
    To(String),
}

/// A declared derived-metric rule: for every cell, divide (or invert) a
/// metric against the cell's *baseline arm* — the cell with the same
/// coordinates except that the axes listed in [`Normalize::baseline`] are
/// pinned to the given labels.
///
/// This is the one mechanism behind every speedup / normalized-energy /
/// normalized-latency column of the paper figures, replacing the
/// per-binary hand-rolled ratio loops.
#[derive(Clone, Debug)]
pub struct Normalize {
    /// Numerator metrics read from each cell.
    pub metrics: Vec<String>,
    /// The metric read from the baseline cell; `None` means "the same
    /// metric as the numerator" (per-metric normalization, e.g. per-class
    /// utilization improvements).
    pub denom_metric: Option<String>,
    /// `(axis name, baseline label)` pins identifying the baseline arm.
    pub baseline: Vec<(String, String)>,
    /// If `true` the derived value is `baseline / cell` (a speedup);
    /// otherwise `cell / baseline` (a normalized fraction).
    pub invert: bool,
    /// Naming of the derived metrics.
    pub rename: Rename,
}

impl Normalize {
    /// The derived metric's name for `metric` under this rule's renaming —
    /// the single naming used both when the runner appends the derived
    /// values and when it declares them in `ScenarioResult::derived_metrics`
    /// (and thus the JSON `derived` field `--compare` gates on).
    pub fn derived_name(&self, metric: &str) -> String {
        match &self.rename {
            Rename::Suffix(s) => format!("{metric}{s}"),
            Rename::To(n) => n.clone(),
        }
    }

    /// The classic speedup rule: `new_name = baseline(metric) / metric`.
    pub fn speedup(
        metric: impl Into<String>,
        baseline: &[(&str, &str)],
        new_name: impl Into<String>,
    ) -> Self {
        Self {
            metrics: vec![metric.into()],
            denom_metric: None,
            baseline: baseline
                .iter()
                .map(|(a, l)| (a.to_string(), l.to_string()))
                .collect(),
            invert: true,
            rename: Rename::To(new_name.into()),
        }
    }

    /// The normalized-fraction rule: each listed metric is divided by the
    /// baseline cell's `denom_metric` (or itself when `None`), suffixed.
    pub fn fraction(
        metrics: &[&str],
        denom_metric: Option<&str>,
        baseline: &[(&str, &str)],
        suffix: impl Into<String>,
    ) -> Self {
        Self {
            metrics: metrics.iter().map(|m| m.to_string()).collect(),
            denom_metric: denom_metric.map(str::to_string),
            baseline: baseline
                .iter()
                .map(|(a, l)| (a.to_string(), l.to_string()))
                .collect(),
            invert: false,
            rename: Rename::Suffix(suffix.into()),
        }
    }
}

/// The aggregation function of a [`Reduction`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceKind {
    /// Arithmetic mean.
    Mean,
    /// Geometric mean (via [`diva_core::geomean`], the workspace's single
    /// numeric implementation).
    Geomean,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
}

impl ReduceKind {
    /// A stable lowercase identifier for JSON output.
    pub fn slug(&self) -> &'static str {
        match self {
            ReduceKind::Mean => "mean",
            ReduceKind::Geomean => "geomean",
            ReduceKind::Max => "max",
            ReduceKind::Min => "min",
        }
    }
}

/// A declared aggregate summary over the result grid.
#[derive(Clone, Debug)]
pub struct Reduction {
    /// Display label, e.g. `"DiVa speedup vs WS"`.
    pub label: String,
    /// The (possibly derived) metric to aggregate.
    pub metric: String,
    /// The aggregation function.
    pub kind: ReduceKind,
    /// Axis names whose values index separate summary rows (empty for one
    /// scalar over the whole grid).
    pub group_by: Vec<String>,
    /// `(axis name, label)` pins restricting which cells contribute.
    pub filter: Vec<(String, String)>,
    /// The paper's reference value, printed alongside for comparison.
    pub paper: Option<&'static str>,
}

impl Reduction {
    /// A reduction over all visible cells carrying `metric`.
    pub fn new(label: impl Into<String>, metric: impl Into<String>, kind: ReduceKind) -> Self {
        Self {
            label: label.into(),
            metric: metric.into(),
            kind,
            group_by: Vec::new(),
            filter: Vec::new(),
            paper: None,
        }
    }

    /// Restricts contributing cells to those matching the axis pins.
    pub fn filter(mut self, pins: &[(&str, &str)]) -> Self {
        self.filter = pins
            .iter()
            .map(|(a, l)| (a.to_string(), l.to_string()))
            .collect();
        self
    }

    /// Produces one summary row per value combination of the given axes.
    pub fn group_by(mut self, axes: &[&str]) -> Self {
        self.group_by = axes.iter().map(|a| a.to_string()).collect();
        self
    }

    /// Attaches the paper's reference value for display.
    pub fn paper(mut self, reference: &'static str) -> Self {
        self.paper = Some(reference);
        self
    }
}

/// Optional text-table pivot: show `metric` as a 2-D table with the values
/// of `axis` as columns (JSON and CSV always stay in long form).
#[derive(Clone, Debug)]
pub struct Pivot {
    /// The axis whose values become table columns.
    pub axis: String,
    /// The metric rendered in the pivoted cells.
    pub metric: String,
}

/// The per-cell evaluation closure.
pub type EvalFn = Arc<dyn Fn(&CellCtx) -> Cell + Send + Sync>;

/// A declarative experiment: axes × eval closure × derived metrics ×
/// reductions, executable by [`runner::run_experiment`].
#[derive(Clone)]
pub struct Experiment {
    /// Stable registry name (`"fig13"`, `"sensitivity_image"`, …).
    pub name: &'static str,
    /// Table title (matches the paper artifact it reproduces).
    pub title: String,
    /// The sweep axes, in declaration (and rendering) order.
    pub axes: Vec<Axis>,
    /// The per-cell evaluation closure.
    pub eval: EvalFn,
    /// Declared derived-metric rules, applied after evaluation.
    pub derived: Vec<Normalize>,
    /// Declared aggregate summaries.
    pub reductions: Vec<Reduction>,
    /// Metrics shown in the *text* table (all metrics always reach JSON and
    /// CSV); empty means "show everything".
    pub display_metrics: Vec<String>,
    /// Optional text-table pivot.
    pub pivot: Option<Pivot>,
    /// Commentary lines printed after the table (paper cross-references).
    pub notes: Vec<String>,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("name", &self.name)
            .field("title", &self.title)
            .field("axes", &self.axes)
            .field("derived", &self.derived)
            .field("reductions", &self.reductions)
            .finish_non_exhaustive()
    }
}

impl Experiment {
    /// Starts an experiment; axes, rules and reductions are added by the
    /// builder-style methods below.
    pub fn new(name: &'static str, title: impl Into<String>, eval: EvalFn) -> Self {
        Self {
            name,
            title: title.into(),
            axes: Vec::new(),
            eval,
            derived: Vec::new(),
            reductions: Vec::new(),
            display_metrics: Vec::new(),
            pivot: None,
            notes: Vec::new(),
        }
    }

    /// Adds an axis.
    pub fn axis(mut self, axis: Axis) -> Self {
        self.axes.push(axis);
        self
    }

    /// Adds a derived-metric rule.
    pub fn derive(mut self, rule: Normalize) -> Self {
        self.derived.push(rule);
        self
    }

    /// Adds a reduction.
    pub fn reduce(mut self, reduction: Reduction) -> Self {
        self.reductions.push(reduction);
        self
    }

    /// Restricts the text table to the listed metrics.
    pub fn display(mut self, metrics: &[&str]) -> Self {
        self.display_metrics = metrics.iter().map(|m| m.to_string()).collect();
        self
    }

    /// Sets the text-table pivot.
    pub fn pivot_on(mut self, axis: &str, metric: &str) -> Self {
        self.pivot = Some(Pivot {
            axis: axis.to_string(),
            metric: metric.to_string(),
        });
        self
    }

    /// Adds a commentary line.
    pub fn note(mut self, line: impl Into<String>) -> Self {
        self.notes.push(line.into());
        self
    }
}

/// Normalizes a label for filter matching: lowercase, alphanumerics only.
/// `"DiVa w/o PPU"` → `"divawoppu"`, so `--points diva-w/o-ppu` matches.
/// Re-exported from `diva_arch` — the one implementation shared with
/// dataflow and design-point preset parsing.
pub use diva_arch::norm_label;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_normalization_strips_punctuation_and_case() {
        assert_eq!(norm_label("DiVa w/o PPU"), "divawoppu");
        assert_eq!(norm_label("DP-SGD(R)"), "dpsgdr");
        assert_eq!(norm_label("VGG-16"), "vgg16");
        assert_eq!(norm_label("OS+PPU"), "osppu");
    }

    #[test]
    fn cell_builder_and_lookup() {
        let cell = Cell::new().metric("seconds", 1.5).note("bound", "memory");
        assert_eq!(cell.get("seconds"), Some(1.5));
        assert_eq!(cell.get("missing"), None);
        assert_eq!(cell.notes[0].1, "memory");
    }

    #[test]
    fn run_report_bridges_to_cell() {
        let model = diva_workload::zoo::lstm_small();
        let accel = Accelerator::from_design_point(diva_core::DesignPoint::Diva).unwrap();
        let report = accel.run(&model, Algorithm::DpSgdReweighted, 8);
        let cell = Cell::from(&report);
        assert_eq!(cell.get("seconds"), Some(report.seconds));
        assert!(cell.get("cycles_bwd_per_batch_grad").unwrap() > 0.0);
    }
}
