//! Scenario definitions for the paper's Figures 4–17.

use std::sync::Arc;

use diva_core::{
    bottleneck_accel_seconds, bottleneck_gpu_seconds, Accelerator, AcceleratorConfig, Dataflow,
    DesignPoint, Phase,
};
use diva_gpu::{GpuModel, Precision};
use diva_workload::{zoo, Algorithm, LayerSpec};

use super::super::{
    Axis, AxisValue, BatchSpec, Cell, CellCtx, Experiment, Normalize, ReduceKind, Reduction,
};
use super::{algorithms_axis, models_axis, paper_batch_axis, points_axis};

/// Figure 7 / 15's merged GEMM classes.
const CLASSES: [(&str, &[Phase]); 4] = [
    ("util_fwd", &[Phase::Forward]),
    ("util_bwd_act", &[Phase::BwdActGrad1, Phase::BwdActGrad2]),
    ("util_bwd_per_batch", &[Phase::BwdPerBatchGrad]),
    ("util_bwd_per_example", &[Phase::BwdPerExampleGrad]),
];

/// Per-class FLOPS utilization of one simulated step.
fn class_utils(report: &diva_core::RunReport, pe_macs: u64) -> Vec<(String, f64)> {
    CLASSES
        .iter()
        .map(|(name, phases)| {
            let (macs, cycles) = phases.iter().fold((0u64, 0u64), |acc, &p| {
                let b = report.timing.phases.get(&p);
                (
                    acc.0 + b.map_or(0, |x| x.macs),
                    acc.1 + b.map_or(0, |x| x.cycles),
                )
            });
            let util = if cycles == 0 {
                0.0
            } else {
                macs as f64 / (cycles as f64 * pe_macs as f64)
            };
            (name.to_string(), util)
        })
        .collect()
}

/// Figure 4: training-memory breakdown per algorithm, normalized to SGD.
pub(in super::super) fn fig04() -> Experiment {
    let eval = Arc::new(|ctx: &CellCtx| {
        let model = ctx.model();
        let batch = ctx.batch();
        let p = model.memory_profile(ctx.algorithm(), batch);
        Cell::new()
            .metric("weight_bytes", p.weight_bytes as f64)
            .metric("activation_bytes", p.activation_bytes as f64)
            .metric("per_batch_grad_bytes", p.per_batch_grad_bytes as f64)
            .metric("per_example_grad_bytes", p.per_example_grad_bytes as f64)
            .metric("other_bytes", p.other_bytes as f64)
            .metric("total_bytes", p.total() as f64)
            .metric("per_example_fraction", p.per_example_fraction())
    });
    let norm_metrics = [
        "weight_bytes",
        "activation_bytes",
        "per_batch_grad_bytes",
        "per_example_grad_bytes",
        "other_bytes",
        "total_bytes",
    ];
    Experiment::new(
        "fig04",
        "Figure 4: memory usage breakdown (normalized to SGD total, identical batch)",
        eval,
    )
    .axis(models_axis())
    .axis(algorithms_axis(&Algorithm::ALL))
    .axis(paper_batch_axis())
    .derive(Normalize::fraction(
        &norm_metrics,
        Some("total_bytes"),
        &[("algorithm", "SGD")],
        "_vs_sgd",
    ))
    .derive(Normalize::fraction(
        &["total_bytes"],
        Some("total_bytes"),
        &[("algorithm", "DP-SGD(R)")],
        "_vs_dpr",
    ))
    .display(&[
        "weight_bytes_vs_sgd",
        "activation_bytes_vs_sgd",
        "per_batch_grad_bytes_vs_sgd",
        "per_example_grad_bytes_vs_sgd",
        "other_bytes_vs_sgd",
        "total_bytes_vs_sgd",
    ])
    .reduce(
        Reduction::new(
            "DP-SGD per-example share of total memory",
            "per_example_fraction",
            ReduceKind::Mean,
        )
        .filter(&[("algorithm", "DP-SGD")])
        .paper("~0.78"),
    )
    .reduce(
        Reduction::new(
            "DP-SGD(R) memory reduction vs DP-SGD",
            "total_bytes_vs_dpr",
            ReduceKind::Mean,
        )
        .filter(&[("algorithm", "DP-SGD")])
        .paper("~3.8x"),
    )
}

/// Figure 5: WS-baseline training-time breakdown per algorithm.
pub(in super::super) fn fig05() -> Experiment {
    // The WS baseline rides a (single-arm) point axis rather than a
    // closure capture so `--set`/`--sweep` can re-materialize it.
    let eval = Arc::new(move |ctx: &CellCtx| {
        let r = ctx.accel().run(ctx.model(), ctx.algorithm(), ctx.batch());
        let fwd = r.phase_cycles(Phase::Forward) as f64;
        let total = r.timing.total_cycles() as f64;
        Cell::from(&r).metric("bwd_fraction", 1.0 - fwd / total)
    });
    let mut norm_metrics: Vec<String> = Phase::ALL
        .iter()
        .map(|p| format!("cycles_{}", p.slug()))
        .collect();
    norm_metrics.push("total_cycles".to_string());
    let norm_refs: Vec<&str> = norm_metrics.iter().map(String::as_str).collect();
    let display: Vec<String> = norm_metrics.iter().map(|m| format!("{m}_vs_sgd")).collect();
    let display_refs: Vec<&str> = display.iter().map(String::as_str).collect();
    Experiment::new(
        "fig05",
        "Figure 5: training-time breakdown on WS baseline (normalized to SGD)",
        eval,
    )
    .axis(models_axis())
    .axis(points_axis(&[DesignPoint::WsBaseline]))
    .axis(algorithms_axis(&Algorithm::ALL))
    .axis(paper_batch_axis())
    .derive(Normalize::fraction(
        &norm_refs,
        Some("total_cycles"),
        &[("algorithm", "SGD")],
        "_vs_sgd",
    ))
    .derive(Normalize::speedup(
        "total_cycles",
        &[("algorithm", "DP-SGD")],
        "speedup_vs_dpsgd",
    ))
    .display(&display_refs)
    .reduce(
        Reduction::new(
            "DP-SGD slowdown vs SGD",
            "total_cycles_vs_sgd",
            ReduceKind::Mean,
        )
        .filter(&[("algorithm", "DP-SGD")])
        .paper("~9.1x"),
    )
    .reduce(
        Reduction::new(
            "DP-SGD(R) speedup over vanilla DP-SGD",
            "speedup_vs_dpsgd",
            ReduceKind::Mean,
        )
        .filter(&[("algorithm", "DP-SGD(R)")])
        .paper("~1.45x (the paper's ~31% faster)"),
    )
    .reduce(
        Reduction::new(
            "DP-SGD(R) slowdown vs SGD",
            "total_cycles_vs_sgd",
            ReduceKind::Mean,
        )
        .filter(&[("algorithm", "DP-SGD(R)")])
        .paper("~5.8x"),
    )
    .reduce(
        Reduction::new(
            "Backprop share of DP-SGD(R) time",
            "bwd_fraction",
            ReduceKind::Mean,
        )
        .filter(&[("algorithm", "DP-SGD(R)")])
        .paper("~99%"),
    )
}

/// Figure 6: representative GEMM dimensions per training phase.
pub(in super::super) fn fig06() -> Experiment {
    // One concrete layer per family, picked from the zoo at build time.
    let mut picks: Vec<(String, String, LayerSpec)> = Vec::new();
    let vgg = zoo::vgg16();
    if let Some(l) = vgg
        .layers
        .iter()
        .find(|l| matches!(l, LayerSpec::Linear { .. }))
    {
        picks.push((
            "MLP".into(),
            format!("{}/{}", vgg.name, l.name()),
            l.clone(),
        ));
    }
    let rn = zoo::resnet50();
    if let Some(l) = rn.layers.iter().find(
        |l| matches!(l, LayerSpec::Conv { k, cin, groups, .. } if *k == 3 && *cin >= 128 && *groups == 1),
    ) {
        picks.push((
            "Convolutional".into(),
            format!("{}/{}", rn.name, l.name()),
            l.clone(),
        ));
    }
    let mb = zoo::mobilenet();
    if let Some(l) = mb
        .layers
        .iter()
        .find(|l| matches!(l, LayerSpec::Conv { groups, .. } if *groups > 1))
    {
        picks.push((
            "Depthwise conv".into(),
            format!("{}/{}", mb.name, l.name()),
            l.clone(),
        ));
    }
    for model in [zoo::bert_base(), zoo::lstm_large()] {
        if let Some(l) = model
            .layers
            .iter()
            .find(|l| matches!(l, LayerSpec::SeqLinear { .. }))
        {
            picks.push((
                format!("MLP (time-series, {})", model.name),
                format!("{}/{}", model.name, l.name()),
                l.clone(),
            ));
        }
    }
    let axis = Axis::new(
        "layer",
        picks
            .iter()
            .map(|(label, _, _)| AxisValue::label(label.clone())),
    );
    let eval = Arc::new(move |ctx: &CellCtx| {
        let batch = match ctx.batch_spec() {
            BatchSpec::Fixed(b) => b,
            BatchSpec::Paper => 32,
        };
        let (_, instance, layer) = picks
            .iter()
            .find(|(label, _, _)| label == ctx.label("layer"))
            .expect("layer axis label");
        let fwd = layer.forward_gemms(batch);
        let pb = layer.per_batch_wgrad_gemms(batch);
        let pe = layer.per_example_wgrad_gemms(batch);
        let mut cell = Cell::new().note("instance", instance.clone());
        let shape = |cell: Cell, prefix: &str, g: &diva_workload::LoweredGemm| {
            cell.metric(format!("{prefix}_m"), g.shape.m as f64)
                .metric(format!("{prefix}_k"), g.shape.k as f64)
                .metric(format!("{prefix}_n"), g.shape.n as f64)
                .metric(format!("{prefix}_count"), g.count as f64)
                .note(prefix, format!("{} x{}", g.shape, g.count))
        };
        if let Some(g) = fwd.first() {
            cell = shape(cell, "fwd", g);
        }
        if let Some(g) = pb.first() {
            cell = shape(cell, "per_batch", g);
        }
        if let Some(g) = pe.first() {
            cell = shape(cell, "per_example", g);
        }
        cell
    });
    Experiment::new("fig06", "Figure 6: GEMM (M, K, N) per training phase", eval)
        .axis(axis)
        .axis(super::fixed_batch_axis(32))
        .display(&["per_example_k", "per_batch_k"])
        .note(
            "Note how per-example K collapses: conv K = P*Q, MLP K = 1, time-series K = L —\n\
         independent of the mini-batch, unlike per-batch K (the paper's key observation).",
        )
}

/// Figure 7: WS-baseline FLOPS utilization per GEMM class.
pub(in super::super) fn fig07() -> Experiment {
    let eval = Arc::new(move |ctx: &CellCtx| {
        // DP-SGD(R) exercises all four GEMM classes in one step; the WS
        // arm comes from the point axis so `--set`/`--sweep` apply.
        let ws = ctx.accel();
        let r = ws.run(ctx.model(), Algorithm::DpSgdReweighted, ctx.batch());
        let utils = class_utils(&r, ws.config().pe.macs());
        let pb = utils[2].1;
        let pe = utils[3].1;
        let mut cell = Cell::new();
        cell.metrics.extend(utils);
        if pe > 0.0 {
            cell = cell.metric("per_batch_over_per_example", pb / pe);
        }
        cell
    });
    Experiment::new(
        "fig07",
        "Figure 7: WS-baseline FLOPS utilization per GEMM class",
        eval,
    )
    .axis(models_axis())
    .axis(points_axis(&[DesignPoint::WsBaseline]))
    .axis(paper_batch_axis())
    .display(&[
        "util_fwd",
        "util_bwd_act",
        "util_bwd_per_batch",
        "util_bwd_per_example",
    ])
    .reduce(
        Reduction::new(
            "Per-batch vs per-example utilization gap",
            "per_batch_over_per_example",
            ReduceKind::Max,
        )
        .paper("up to ~29x"),
    )
    .reduce(Reduction::new(
        "Per-example-grad utilization",
        "util_bwd_per_example",
        ReduceKind::Mean,
    ))
}

/// Figure 13: end-to-end speedup vs the WS systolic baseline.
pub(in super::super) fn fig13() -> Experiment {
    let eval = Arc::new(|ctx: &CellCtx| {
        let r = ctx.accel().run(ctx.model(), ctx.algorithm(), ctx.batch());
        Cell::from(&r)
    });
    Experiment::new(
        "fig13",
        "Figure 13: speedup over the WS baseline (DP-SGD(R) unless noted)",
        eval,
    )
    .axis(models_axis())
    .axis(points_axis(&DesignPoint::ALL))
    .axis(algorithms_axis(&[
        Algorithm::DpSgdReweighted,
        Algorithm::Sgd,
    ]))
    .axis(paper_batch_axis())
    .derive(Normalize::speedup(
        "seconds",
        &[("point", "WS"), ("algorithm", "DP-SGD(R)")],
        "speedup",
    ))
    .derive(Normalize::speedup(
        "seconds",
        &[("point", "WS")],
        "speedup_same_alg",
    ))
    .derive(Normalize::speedup(
        "seconds",
        &[("point", "WS"), ("algorithm", "SGD")],
        "vs_ws_sgd",
    ))
    .display(&["seconds", "speedup"])
    .pivot_on("point", "speedup")
    .reduce(
        Reduction::new(
            "DiVa speedup vs WS (geomean)",
            "speedup",
            ReduceKind::Geomean,
        )
        .filter(&[("point", "DiVa"), ("algorithm", "DP-SGD(R)")])
        .paper("avg 3.6x"),
    )
    .reduce(
        Reduction::new("DiVa speedup vs WS (mean)", "speedup", ReduceKind::Mean)
            .filter(&[("point", "DiVa"), ("algorithm", "DP-SGD(R)")])
            .paper("3.6x"),
    )
    .reduce(
        Reduction::new("DiVa speedup vs WS (max)", "speedup", ReduceKind::Max)
            .filter(&[("point", "DiVa"), ("algorithm", "DP-SGD(R)")])
            .paper("7.3x"),
    )
    .reduce(
        Reduction::new("DiVa w/o PPU speedup (mean)", "speedup", ReduceKind::Mean)
            .filter(&[("point", "DiVa w/o PPU"), ("algorithm", "DP-SGD(R)")]),
    )
    .reduce(
        Reduction::new("OS+PPU speedup (mean)", "speedup", ReduceKind::Mean)
            .filter(&[("point", "OS+PPU"), ("algorithm", "DP-SGD(R)")]),
    )
    .reduce(
        Reduction::new(
            "DiVa-SGD vs WS-SGD (mean)",
            "speedup_same_alg",
            ReduceKind::Mean,
        )
        .filter(&[("point", "DiVa"), ("algorithm", "SGD")])
        .paper("~1.6x"),
    )
    .reduce(
        Reduction::new(
            "DiVa DP-SGD(R) as a fraction of WS SGD throughput",
            "vs_ws_sgd",
            ReduceKind::Mean,
        )
        .filter(&[("point", "DiVa"), ("algorithm", "DP-SGD(R)")])
        .paper("~0.75"),
    )
}

/// Figure 14: DP-SGD(R) latency breakdown per design point.
pub(in super::super) fn fig14() -> Experiment {
    let eval = Arc::new(|ctx: &CellCtx| {
        let r = ctx
            .accel()
            .run(ctx.model(), Algorithm::DpSgdReweighted, ctx.batch());
        Cell::from(&r)
    });
    const SHOWN: [Phase; 6] = [
        Phase::Forward,
        Phase::BwdActGrad1,
        Phase::BwdPerExampleGrad,
        Phase::BwdGradNorm,
        Phase::BwdActGrad2,
        Phase::BwdPerBatchGrad,
    ];
    let mut norm_metrics: Vec<String> = SHOWN
        .iter()
        .map(|p| format!("cycles_{}", p.slug()))
        .collect();
    norm_metrics.push("total_cycles".to_string());
    let norm_refs: Vec<&str> = norm_metrics.iter().map(String::as_str).collect();
    let display: Vec<String> = norm_metrics.iter().map(|m| format!("{m}_vs_ws")).collect();
    let display_refs: Vec<&str> = display.iter().map(String::as_str).collect();
    Experiment::new(
        "fig14",
        "Figure 14: DP-SGD(R) latency breakdown (normalized to WS total)",
        eval,
    )
    .axis(Axis::new(
        "model",
        [
            zoo::vgg16(),
            zoo::resnet152(),
            zoo::bert_large(),
            zoo::lstm_large(),
        ]
        .map(AxisValue::model),
    ))
    .axis(points_axis(&DesignPoint::ALL))
    .axis(paper_batch_axis())
    .derive(Normalize::fraction(
        &norm_refs,
        Some("total_cycles"),
        &[("point", "WS")],
        "_vs_ws",
    ))
    .derive(Normalize::speedup(
        "cycles_bwd_per_example_grad",
        &[("point", "WS")],
        "per_example_grad_speedup",
    ))
    .display(&display_refs)
    .reduce(
        Reduction::new(
            "Per-example-gradient latency reduction, DiVa vs WS (mean)",
            "per_example_grad_speedup",
            ReduceKind::Mean,
        )
        .filter(&[("point", "DiVa")])
        .paper("avg 7.0x"),
    )
    .reduce(
        Reduction::new(
            "Per-example-gradient latency reduction, DiVa vs WS (max)",
            "per_example_grad_speedup",
            ReduceKind::Max,
        )
        .filter(&[("point", "DiVa")])
        .paper("max 14.6x"),
    )
}

/// Figure 15: FLOPS-utilization improvement per GEMM class vs WS.
pub(in super::super) fn fig15() -> Experiment {
    let eval = Arc::new(|ctx: &CellCtx| {
        let accel = ctx.accel();
        let r = accel.run(ctx.model(), Algorithm::DpSgdReweighted, ctx.batch());
        let mut cell = Cell::new();
        cell.metrics
            .extend(class_utils(&r, accel.config().pe.macs()));
        cell
    });
    let class_names: Vec<&str> = CLASSES.iter().map(|(n, _)| *n).collect();
    let display: Vec<String> = class_names
        .iter()
        .map(|m| format!("{m}_improvement"))
        .collect();
    let display_refs: Vec<&str> = display.iter().map(String::as_str).collect();
    Experiment::new(
        "fig15",
        "Figure 15: FLOPS-utilization improvement vs WS (DP-SGD(R))",
        eval,
    )
    .axis(models_axis())
    .axis(points_axis(&[
        DesignPoint::WsBaseline,
        DesignPoint::OsWithPpu,
        DesignPoint::Diva,
    ]))
    .axis(paper_batch_axis())
    .derive(Normalize::fraction(
        &class_names,
        None,
        &[("point", "WS")],
        "_improvement",
    ))
    .display(&display_refs)
    .pivot_on("point", "util_bwd_per_example_improvement")
    .reduce(
        Reduction::new(
            "DiVa per-example-grad utilization improvement (mean)",
            "util_bwd_per_example_improvement",
            ReduceKind::Mean,
        )
        .filter(&[("point", "DiVa")])
        .paper("avg 5.5x"),
    )
    .reduce(
        Reduction::new(
            "DiVa per-example-grad utilization improvement (max)",
            "util_bwd_per_example_improvement",
            ReduceKind::Max,
        )
        .filter(&[("point", "DiVa")])
        .paper("max 28.9x"),
    )
}

/// Figure 16: chip-wide step energy normalized to the WS baseline.
pub(in super::super) fn fig16() -> Experiment {
    let mut os_no_ppu: AcceleratorConfig =
        AcceleratorConfig::tpu_v3_like(Dataflow::OutputStationary);
    os_no_ppu.has_ppu = false;
    let points = Axis::new(
        "point",
        [
            AxisValue::accel(
                Accelerator::from_design_point(DesignPoint::WsBaseline)
                    .expect("preset configs validate"),
            ),
            AxisValue::accel(
                Accelerator::from_config("OS w/o PPU", os_no_ppu).expect("valid config"),
            ),
            AxisValue::accel(
                Accelerator::from_design_point(DesignPoint::OsWithPpu)
                    .expect("preset configs validate"),
            ),
            AxisValue::accel(
                Accelerator::from_design_point(DesignPoint::DivaNoPpu)
                    .expect("preset configs validate"),
            ),
            AxisValue::accel(
                Accelerator::from_design_point(DesignPoint::Diva).expect("preset configs validate"),
            ),
        ],
    );
    let eval = Arc::new(|ctx: &CellCtx| {
        let r = ctx
            .accel()
            .run(ctx.model(), Algorithm::DpSgdReweighted, ctx.batch());
        Cell::from(&r)
    });
    let components = [
        "energy_j",
        "energy_engine_j",
        "energy_ppu_j",
        "energy_sram_j",
        "energy_dram_j",
        "energy_uncore_j",
    ];
    let display: Vec<String> = components.iter().map(|m| format!("{m}_vs_ws")).collect();
    let display_refs: Vec<&str> = display.iter().map(String::as_str).collect();
    Experiment::new(
        "fig16",
        "Figure 16: DP-SGD(R) step energy (normalized to WS total)",
        eval,
    )
    .axis(models_axis())
    .axis(points)
    .axis(paper_batch_axis())
    .derive(Normalize::fraction(
        &components,
        Some("energy_j"),
        &[("point", "WS")],
        "_vs_ws",
    ))
    .derive(Normalize::speedup(
        "energy_j",
        &[("point", "WS")],
        "energy_reduction",
    ))
    .display(&display_refs)
    .pivot_on("point", "energy_j_vs_ws")
    .reduce(
        Reduction::new(
            "DiVa energy reduction vs WS (mean)",
            "energy_reduction",
            ReduceKind::Mean,
        )
        .filter(&[("point", "DiVa")])
        .paper("avg 2.6x"),
    )
    .reduce(
        Reduction::new(
            "DiVa energy reduction vs WS (max)",
            "energy_reduction",
            ReduceKind::Max,
        )
        .filter(&[("point", "DiVa")])
        .paper("max 4.6x"),
    )
}

/// Figure 17: DiVa vs V100/A100 on the per-example-gradient bottleneck.
pub(in super::super) fn fig17() -> Experiment {
    let v100 = GpuModel::v100();
    let a100 = GpuModel::a100();
    let eval = Arc::new(move |ctx: &CellCtx| {
        let model = ctx.model();
        let batch = ctx.batch();
        let seconds = match ctx.label("device") {
            "V100 (FP32)" => bottleneck_gpu_seconds(model, batch, &v100, Precision::Fp32),
            "V100 (FP16)" => bottleneck_gpu_seconds(model, batch, &v100, Precision::Fp16TensorCore),
            "A100 (FP32)" => bottleneck_gpu_seconds(model, batch, &a100, Precision::Fp32),
            "A100 (FP16)" => bottleneck_gpu_seconds(model, batch, &a100, Precision::Fp16TensorCore),
            // The DiVa arm carries its accelerator on the axis, so
            // `--set`/`--sweep` re-materialize it (the GPU arms are
            // bare labels and take no hardware overrides).
            "DiVa (BF16)" => bottleneck_accel_seconds(ctx.accel(), model, batch),
            other => panic!("unknown device {other:?}"),
        };
        Cell::new().metric("seconds", seconds)
    });
    Experiment::new(
        "fig17",
        "Figure 17: DP-SGD bottleneck-GEMM speedup (normalized to V100 FP32)",
        eval,
    )
    .axis(models_axis())
    .axis(Axis::new(
        "device",
        [
            AxisValue::label("V100 (FP32)"),
            AxisValue::label("V100 (FP16)"),
            AxisValue::label("A100 (FP32)"),
            AxisValue::label("A100 (FP16)"),
            AxisValue::accel(
                Accelerator::from_config("DiVa (BF16)", DesignPoint::Diva.config())
                    .expect("preset configs validate"),
            ),
        ],
    ))
    .axis(paper_batch_axis())
    .derive(Normalize::speedup(
        "seconds",
        &[("device", "V100 (FP32)")],
        "speedup",
    ))
    .derive(Normalize::speedup(
        "seconds",
        &[("device", "V100 (FP16)")],
        "vs_v100_fp16",
    ))
    .derive(Normalize::speedup(
        "seconds",
        &[("device", "A100 (FP16)")],
        "vs_a100_fp16",
    ))
    .display(&["seconds", "speedup"])
    .pivot_on("device", "speedup")
    .reduce(
        Reduction::new(
            "DiVa vs V100 tensor cores (mean)",
            "vs_v100_fp16",
            ReduceKind::Mean,
        )
        .filter(&[("device", "DiVa (BF16)")])
        .paper("avg 1.2x"),
    )
    .reduce(
        Reduction::new(
            "DiVa vs V100 tensor cores (max)",
            "vs_v100_fp16",
            ReduceKind::Max,
        )
        .filter(&[("device", "DiVa (BF16)")])
        .paper("max 4.1x"),
    )
    .reduce(
        Reduction::new(
            "DiVa vs A100 tensor cores (mean)",
            "vs_a100_fp16",
            ReduceKind::Mean,
        )
        .filter(&[("device", "DiVa (BF16)")])
        .paper("avg 1.0x"),
    )
    .reduce(
        Reduction::new(
            "DiVa vs A100 tensor cores (max)",
            "vs_a100_fp16",
            ReduceKind::Max,
        )
        .filter(&[("device", "DiVa (BF16)")])
        .paper("max 3.4x"),
    )
    .note(
        "DiVa peak is only 23.6% / 9.5% of V100 / A100 FP16 peak — winning by mapping,\n\
         not muscle (the paper's point). MobileNet favors the GPUs (batched micro-GEMMs).",
    )
}
