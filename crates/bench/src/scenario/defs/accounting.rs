//! The **privacy-accounting** scenario: ε over (accountant × q × σ ×
//! steps), the grid a practitioner scans before committing a training
//! budget — and the registry's living comparison of the RDP (moments)
//! accountant against the PLD engine.
//!
//! Unlike the hardware scenarios this one runs no simulator: each cell is
//! a pure `diva_dp` accounting query. It earns its registry slot by the
//! same contract as the rest — named axes, derived metrics, JSON output,
//! `--selfcheck` — so the accounting engine is sweepable, diffable and
//! CI-gated like any figure.

use std::sync::Arc;

use diva_dp::{event_epsilon, AccountantKind, DpEvent};

use super::super::{Axis, AxisValue, Cell, CellCtx, Experiment, Normalize, ReduceKind, Reduction};

/// The δ every cell reports ε at (the MNIST-scale convention).
const DELTA: f64 = 1e-5;

fn num_axis(name: &'static str, values: &[f64]) -> Axis {
    Axis::new(
        name,
        values.iter().map(|&v| AxisValue::num(format!("{v}"), v)),
    )
}

/// DP accounting: ε(δ = 1e-5) for DP-SGD over accountant × q × σ × steps.
pub(in super::super) fn dp_accounting() -> Experiment {
    let eval = Arc::new(|ctx: &CellCtx| {
        // Axis labels are registry constants, so a parse/accounting failure
        // is a scenario-definition bug: panic with the typed error's
        // message and let the cell supervisor fold it into CellsFailed.
        let kind = AccountantKind::parse(ctx.label("accountant"))
            .unwrap_or_else(|e| panic!("dp_accounting accountant axis: {e}"));
        let q = ctx.num("q");
        let sigma = ctx.num("sigma");
        let steps = ctx.num("steps") as u64;
        let event = DpEvent::dp_sgd(q, sigma, steps);
        let eps = event_epsilon(kind, &event, DELTA)
            .unwrap_or_else(|e| panic!("dp_accounting cell (q={q}, sigma={sigma}): {e}"));
        Cell::new().metric("epsilon", eps)
    });
    Experiment::new(
        "dp_accounting",
        format!("DP accounting: epsilon at delta = {DELTA:e} per accountant, q, sigma, steps"),
        eval,
    )
    .axis(Axis::new(
        "accountant",
        ["rdp", "pld"].map(AxisValue::label),
    ))
    .axis(num_axis("q", &[0.004, 0.01, 0.02]))
    .axis(num_axis("sigma", &[0.8, 1.0, 1.5]))
    .axis(num_axis("steps", &[500.0, 2000.0, 4000.0]))
    .derive(Normalize::fraction(
        &["epsilon"],
        None,
        &[("accountant", "rdp")],
        "_vs_rdp",
    ))
    .pivot_on("steps", "epsilon")
    .reduce(
        Reduction::new(
            "PLD epsilon as a fraction of RDP (mean)",
            "epsilon_vs_rdp",
            ReduceKind::Mean,
        )
        .filter(&[("accountant", "pld")]),
    )
    .note(
        "The PLD accountant composes exact privacy-loss distributions by FFT, so its\n\
         epsilon is tight up to discretization; the RDP accountant pays conversion\n\
         slack on top. The ratio below 1.0 is free privacy budget — noise that can\n\
         be removed (or steps added) at the same published (eps, delta).",
    )
}
