//! Scenario definitions for the paper's Tables I–III and the
//! section-level studies (max-batch, PPU traffic, roofline, training-run
//! cost).

use std::sync::Arc;

use diva_arch::{sram_bandwidth, Dataflow, PeArray, TrainingOpKind};
use diva_core::{Accelerator, DesignPoint, Phase, TrainingRunPlan};
use diva_energy::{table_iii, SynthesisModel};
use diva_sim::{ridge_intensity, roofline, Bound};
use diva_workload::{zoo, Algorithm};

use crate::{fmt_bytes, paper_batch, HBM_CAPACITY};

use super::super::{Axis, AxisValue, Cell, CellCtx, Experiment, Normalize, ReduceKind, Reduction};
use super::{algorithms_axis, models_axis, paper_batch_axis, points_axis};

/// Table I: SRAM read/write bandwidth requirements per dataflow.
pub(in super::super) fn table1() -> Experiment {
    let eval = Arc::new(|ctx: &CellCtx| {
        let pe = PeArray::new(128, 128);
        let df = Dataflow::ALL
            .iter()
            .find(|d| d.label() == ctx.label("dataflow"))
            .copied()
            .expect("dataflow axis label");
        let bw = sram_bandwidth(df, pe, 8, 8);
        Cell::new()
            .metric("lhs_read_b_per_clk", bw.lhs_read as f64)
            .metric("rhs_read_b_per_clk", bw.rhs_read as f64)
            .metric("output_write_b_per_clk", bw.output_write as f64)
            .metric("total_b_per_clk", bw.total() as f64)
    });
    Experiment::new(
        "table1",
        "Table I: SRAM bandwidth requirements (128x128 PEs, BF16 in / FP32 out)",
        eval,
    )
    .axis(Axis::new(
        "dataflow",
        Dataflow::ALL.iter().map(|d| AxisValue::label(d.label())),
    ))
    .note(
        "WS total = (2*PE_H + 20*PE_W) B/clk; OS & outer-product = (2*PE_H + 34*PE_W) B/clk,\n\
         the paper's Section IV-D design-overhead trade-off.",
    )
}

/// Table II: the DiVa architecture configuration.
pub(in super::super) fn table2() -> Experiment {
    let eval = Arc::new(|ctx: &CellCtx| {
        let cfg = DesignPoint::Diva.config();
        let (value, display) = match ctx.label("parameter") {
            "pe_array" => (cfg.pe.macs() as f64, format!("{}", cfg.pe)),
            "frequency_mhz" => (cfg.freq_hz / 1e6, format!("{:.0} MHz", cfg.freq_hz / 1e6)),
            "sram_bytes" => (cfg.sram_bytes as f64, fmt_bytes(cfg.sram_bytes)),
            "memory_channels" => (cfg.memory.channels as f64, cfg.memory.channels.to_string()),
            "memory_bandwidth_gbps" => (
                cfg.memory.bandwidth_bytes_per_sec / 1e9,
                format!("{:.0} GB/sec", cfg.memory.bandwidth_bytes_per_sec / 1e9),
            ),
            "memory_latency_cycles" => (
                cfg.memory.access_latency_cycles as f64,
                format!("{} cycles", cfg.memory.access_latency_cycles),
            ),
            "drain_rows_per_cycle" => (
                cfg.drain_rows_per_cycle as f64,
                format!("{} rows/cycle", cfg.drain_rows_per_cycle),
            ),
            "peak_tflops" => (
                cfg.peak_tflops(),
                format!("{:.1} TFLOPS", cfg.peak_tflops()),
            ),
            "has_ppu" => (f64::from(u8::from(cfg.has_ppu)), cfg.has_ppu.to_string()),
            other => panic!("unknown parameter {other:?}"),
        };
        Cell::new().metric("value", value).note("display", display)
    });
    let parameters = [
        "pe_array",
        "frequency_mhz",
        "sram_bytes",
        "memory_channels",
        "memory_bandwidth_gbps",
        "memory_latency_cycles",
        "drain_rows_per_cycle",
        "peak_tflops",
        "has_ppu",
    ];
    Experiment::new("table2", "Table II: DiVa architecture configuration", eval).axis(Axis::new(
        "parameter",
        parameters.iter().map(|p| AxisValue::label(*p)),
    ))
}

/// Table III: engine power/area and effective DP-SGD(R) throughput.
pub(in super::super) fn table3() -> Experiment {
    let eval = Arc::new(|ctx: &CellCtx| {
        let engine = ctx.label("engine");
        let (ei, df) = Dataflow::ALL
            .iter()
            .enumerate()
            .find(|(_, d)| d.label() == engine)
            .map(|(i, d)| (i, *d))
            .expect("engine axis label");
        // Effective TFLOPS over the full DP-SGD(R) suite on this engine;
        // the accelerator rides the axis so `--set`/`--sweep` re-shape it.
        let accel = ctx.accel();
        let mut flops = 0.0;
        let mut seconds = 0.0;
        for model in zoo::all_models() {
            let r = accel.run(&model, Algorithm::DpSgdReweighted, ctx.batch_for(&model));
            flops += 2.0 * r.timing.total_macs() as f64;
            seconds += r.seconds;
        }
        let mut effective = [0.0f64; 3];
        effective[ei] = flops / seconds / 1e12;
        let cfg = DesignPoint::Diva.config();
        let synthesis = SynthesisModel::calibrated();
        let row = table_iii(&cfg, &synthesis, effective)
            .into_iter()
            .nth(ei)
            .expect("three engine rows");
        let mut cell = Cell::new()
            .metric("peak_tflops", row.peak_tflops)
            .metric("effective_tflops", row.effective_tflops)
            .metric("power_w", row.power_w)
            .metric("area_mm2", row.area_mm2)
            .metric("tflops_per_watt", row.tflops_per_watt)
            .metric("tflops_per_mm2", row.tflops_per_mm2);
        if df == Dataflow::OuterProduct {
            cell = cell
                .metric("area_overhead_vs_ws", synthesis.area_overhead_vs_ws(false))
                .metric(
                    "area_overhead_vs_ws_with_ppu",
                    synthesis.area_overhead_vs_ws(true),
                )
                // The paper quotes the PPU as a +4.6% *increment* on top of
                // the engine's 19.6% overhead; expose it directly so JSON
                // consumers don't have to subtract.
                .metric(
                    "area_overhead_ppu_increment",
                    synthesis.area_overhead_vs_ws(true) - synthesis.area_overhead_vs_ws(false),
                );
        }
        cell
    });
    Experiment::new(
        "table3",
        "Table III: engine power/area and effective throughput (DP-SGD(R) suite)",
        eval,
    )
    .axis(Axis::new(
        "engine",
        Dataflow::ALL.iter().map(|d| {
            let design = match d {
                Dataflow::WeightStationary => DesignPoint::WsBaseline,
                Dataflow::OutputStationary => DesignPoint::OsWithPpu,
                Dataflow::OuterProduct => DesignPoint::Diva,
            };
            // Named after the dataflow (not the preset) so the paper's
            // WS / OS / DiVa row labels — and every filter and reduction
            // keyed on them — survive the move onto an accelerator axis.
            AxisValue::accel(
                Accelerator::from_config(d.label(), design.config())
                    .expect("preset configs validate"),
            )
        }),
    ))
    .axis(paper_batch_axis())
    .derive(Normalize::fraction(
        &["tflops_per_watt", "tflops_per_mm2"],
        None,
        &[("engine", "WS")],
        "_vs_ws",
    ))
    .display(&[
        "peak_tflops",
        "effective_tflops",
        "power_w",
        "area_mm2",
        "tflops_per_watt",
        "tflops_per_mm2",
    ])
    .reduce(
        Reduction::new(
            "DiVa TFLOPS/W vs WS",
            "tflops_per_watt_vs_ws",
            ReduceKind::Mean,
        )
        .filter(&[("engine", "DiVa")])
        .paper("3.5x"),
    )
    .reduce(
        Reduction::new(
            "DiVa TFLOPS/mm^2 vs WS",
            "tflops_per_mm2_vs_ws",
            ReduceKind::Mean,
        )
        .filter(&[("engine", "DiVa")])
        .paper("4.6x"),
    )
    .note(
        "Paper's measured effective TFLOPS were 1.2 / 0.9 / 6.6; area overhead vs WS:\n\
         engine 19.6% (area_overhead_vs_ws), +PPU 4.6% (area_overhead_ppu_increment);\n\
         area_overhead_vs_ws_with_ppu is the absolute engine+PPU overhead (~24.2%).",
    )
}

/// Section III-A: max power-of-two mini-batch per model and algorithm.
pub(in super::super) fn maxbatch() -> Experiment {
    let eval = Arc::new(|ctx: &CellCtx| {
        let model = ctx.model();
        Cell::new()
            .metric("weight_bytes", (model.params() * 4) as f64)
            .metric(
                "max_batch",
                model.max_batch_pow2(ctx.algorithm(), HBM_CAPACITY) as f64,
            )
            .note("weights", fmt_bytes(model.params() * 4))
    });
    Experiment::new(
        "maxbatch",
        "Max power-of-two mini-batch under 16 GB HBM (paper Section III-A)",
        eval,
    )
    .axis(models_axis())
    .axis(algorithms_axis(&Algorithm::ALL))
    .derive(Normalize::fraction(
        &["max_batch"],
        Some("max_batch"),
        &[("algorithm", "DP-SGD")],
        "_vs_dpsgd",
    ))
    .display(&["max_batch"])
    .pivot_on("algorithm", "max_batch")
    .reduce(
        Reduction::new(
            "SGD/DP-SGD max-batch ratio (geomean)",
            "max_batch_vs_dpsgd",
            ReduceKind::Geomean,
        )
        .filter(&[("algorithm", "SGD")])
        .paper("e.g. 256x for ResNet-152, 128x for BERT-base"),
    )
}

/// Gradient-tensor movement during post-processing: the per-example
/// gradient spill plus the norm/clip/reduce sweeps that re-read it.
fn post_bytes(timing: &diva_core::StepTiming) -> u64 {
    let spill: u64 = timing
        .ops
        .iter()
        .filter(|o| o.phase == Phase::BwdPerExampleGrad)
        .map(|o| o.dram_write_bytes)
        .sum();
    let sweeps: u64 = [
        Phase::BwdGradNorm,
        Phase::BwdGradClip,
        Phase::BwdReduceNoise,
    ]
    .iter()
    .map(|&p| timing.phase_dram_bytes(p))
    .sum();
    spill + sweeps
}

/// Section IV-C / VI-A: the PPU's post-processing traffic reduction.
pub(in super::super) fn ppu_traffic() -> Experiment {
    let eval = Arc::new(|ctx: &CellCtx| {
        let r = ctx
            .accel()
            .run(ctx.model(), Algorithm::DpSgdReweighted, ctx.batch());
        Cell::new()
            .metric("post_bytes", post_bytes(&r.timing) as f64)
            .metric("seconds", r.seconds)
            .note("post_traffic", fmt_bytes(post_bytes(&r.timing)))
    });
    Experiment::new(
        "ppu_traffic",
        "PPU off-chip traffic during gradient post-processing (DP-SGD(R))",
        eval,
    )
    .axis(models_axis())
    .axis(points_axis(&[DesignPoint::Diva, DesignPoint::DivaNoPpu]))
    .axis(paper_batch_axis())
    .derive(Normalize::fraction(
        &["post_bytes"],
        Some("post_bytes"),
        &[("point", "DiVa w/o PPU")],
        "_vs_no_ppu",
    ))
    .display(&["post_bytes", "post_bytes_vs_no_ppu"])
    .reduce(
        Reduction::new(
            "Residual post-processing traffic with the PPU (fraction of w/o-PPU)",
            "post_bytes_vs_no_ppu",
            ReduceKind::Mean,
        )
        .filter(&[("point", "DiVa")])
        .paper("~0.01 (a 99% reduction)"),
    )
}

/// Section III-C: roofline placement of DP-SGD(R)'s GEMM classes.
pub(in super::super) fn roofline_analysis() -> Experiment {
    let model = zoo::resnet50();
    let batch = paper_batch(&model);
    let phases = [
        Phase::Forward,
        Phase::BwdActGrad1,
        Phase::BwdPerBatchGrad,
        Phase::BwdPerExampleGrad,
    ];
    let eval = Arc::new(move |ctx: &CellCtx| {
        let accel = ctx.accel();
        let phase = *phases
            .iter()
            .find(|p| p.label() == ctx.label("phase"))
            .expect("phase axis label");
        let ops = model.lower(Algorithm::DpSgdReweighted, batch);
        // One representative GEMM per phase: the largest by MACs, except
        // the per-example phase, where the *smallest K* is the pathological
        // (and interesting) case.
        let candidates = ops.iter().filter(|o| o.phase == phase);
        let pick = if phase == Phase::BwdPerExampleGrad {
            candidates.min_by_key(|o| match &o.kind {
                TrainingOpKind::Gemm { shape, .. } => shape.k,
                _ => u64::MAX,
            })
        } else {
            candidates.max_by_key(|o| o.macs())
        };
        let Some(op) = pick else {
            return Cell::new();
        };
        let TrainingOpKind::Gemm {
            shape,
            count,
            output_persists,
        } = &op.kind
        else {
            return Cell::new();
        };
        let write = *output_persists || !accel.simulator().can_fuse_postprocessing();
        let p = roofline(accel.config(), *shape, *count, write);
        Cell::new()
            .metric("intensity_macs_per_byte", p.intensity)
            .metric("macs_per_cycle", p.macs_per_cycle)
            .metric("ceiling_macs_per_cycle", p.ceiling)
            .metric(
                "memory_bound",
                f64::from(u8::from(p.bound == Bound::Memory)),
            )
            .note("gemm", format!("{shape} x{count}"))
            .note(
                "bound",
                match p.bound {
                    Bound::Compute => "compute",
                    Bound::Memory => "memory",
                },
            )
    });
    let ridge = ridge_intensity(&DesignPoint::Diva.config());
    Experiment::new(
        "roofline",
        format!("Roofline: ResNet-50 DP-SGD(R) at batch {batch} (ridge = {ridge:.1} MACs/byte)"),
        eval,
    )
    .axis(points_axis(&[DesignPoint::WsBaseline, DesignPoint::Diva]))
    .axis(Axis::new(
        "phase",
        phases.iter().map(|p| AxisValue::label(p.label())),
    ))
    .note(
        "The small-K per-example gradient GEMM is the pathology: on WS its spilled\n\
         output pins it to the memory roof at a fraction of peak; on DiVa the PPU\n\
         consumes the output on-chip, lifting both the intensity and the achieved\n\
         rate — Section III-C's bottleneck, visualized.",
    )
}

/// Capstone: wall-clock / energy / epsilon cost of a full private run.
pub(in super::super) fn training_run_cost() -> Experiment {
    let eval = Arc::new(|ctx: &CellCtx| {
        let model = ctx.model();
        let plan = TrainingRunPlan {
            dataset_size: 50_000,
            batch: ctx.batch(),
            epochs: 100,
            noise_multiplier: 1.1,
            delta: 1e-5,
        };
        let e = ctx
            .accel()
            .estimate_training_run(model, Algorithm::DpSgdReweighted, &plan);
        Cell::new()
            .metric("hours", e.hours())
            .metric("watt_hours", e.watt_hours())
            .metric("epsilon", e.epsilon.unwrap_or(f64::NAN))
            .metric("epsilon_rdp", e.epsilon_rdp.unwrap_or(f64::NAN))
    });
    Experiment::new(
        "training_run_cost",
        "Training-run cost: 100 epochs of CIFAR-10-scale DP-SGD(R), sigma=1.1, delta=1e-5",
        eval,
    )
    .axis(models_axis())
    .axis(points_axis(&[DesignPoint::WsBaseline, DesignPoint::Diva]))
    .axis(paper_batch_axis())
    .derive(Normalize::speedup("hours", &[("point", "WS")], "speedup"))
    .reduce(
        Reduction::new(
            "DiVa wall-clock speedup (mean)",
            "speedup",
            ReduceKind::Mean,
        )
        .filter(&[("point", "DiVa")]),
    )
    .note(
        "Epsilon is a property of the algorithm, not the hardware: DiVa buys back the\n\
         wall-clock and energy that privacy costs, at identical (eps, delta).",
    )
}
