//! The **design-space exploration** (`dse_*`) scenario family: Table II
//! knobs as first-class sweep axes, asking the hardware questions the
//! paper's fixed configuration (and its Figures 13–17 one-point answers)
//! cannot.
//!
//! Every scenario here is a `(model × design point × config axis)` grid:
//! the config axis carries parameter overrides from the
//! `diva_arch::params` registry, the runner materializes a validated
//! accelerator per cell, and the existing [`Normalize`] machinery derives
//! DiVa-vs-WS speedups *at each swept configuration* — so the baseline
//! moves with the knob, exactly like the paper's sensitivity studies.
//!
//! These four are only the registered starters: `diva-report <scenario>
//! --sweep key=v1,v2` injects the same kind of axis into any scenario
//! with an accelerator axis, for any registered parameter, with no new
//! Rust code.

use std::sync::Arc;

use diva_core::{DesignPoint, DesignSpec};
use diva_workload::{zoo, Algorithm};

use super::super::{Axis, AxisValue, Cell, CellCtx, Experiment, Normalize, ReduceKind, Reduction};
use super::{config_axis, paper_batch_axis, spec_points_axis};

/// The three-model DSE workload set: one large CNN, one depthwise CNN
/// (the paper's hardest case), one transformer.
fn dse_models_axis() -> Axis {
    Axis::new(
        "model",
        [zoo::resnet50(), zoo::mobilenet(), zoo::bert_base()].map(AxisValue::model),
    )
}

/// The WS-vs-DiVa point axis every `dse_*` scenario compares across.
fn dse_points_axis() -> Axis {
    spec_points_axis(&[
        DesignSpec::preset(DesignPoint::WsBaseline),
        DesignSpec::preset(DesignPoint::Diva),
    ])
}

/// Shared shape of the family: DP-SGD(R) step time over (model × point ×
/// config axis), with the DiVa-vs-WS speedup derived at each swept value.
fn dse(name: &'static str, title: &str, cfg_axis: Axis, note: &str) -> Experiment {
    let axis_name = cfg_axis.name.clone();
    let eval = Arc::new(|ctx: &CellCtx| {
        let r = ctx
            .accel()
            .run(ctx.model(), Algorithm::DpSgdReweighted, ctx.batch());
        Cell::from(&r)
    });
    Experiment::new(name, title, eval)
        .axis(dse_models_axis())
        .axis(dse_points_axis())
        .axis(cfg_axis)
        .axis(paper_batch_axis())
        .derive(Normalize::speedup("seconds", &[("point", "WS")], "speedup"))
        .display(&["seconds", "speedup"])
        .pivot_on(&axis_name, "speedup")
        .reduce(
            Reduction::new(
                "DiVa speedup vs WS (geomean)",
                "speedup",
                ReduceKind::Geomean,
            )
            .filter(&[("point", "DiVa")])
            .group_by(&[axis_name.as_str()]),
        )
        .note(note.to_string())
}

/// DSE: PE-array scale (both dimensions swept together).
pub(in super::super) fn dse_pe_scale() -> Experiment {
    let scales = Axis::new(
        "pe",
        ["32", "64", "128", "256"]
            .iter()
            .map(|s| AxisValue::overrides(format!("{s}x{s}"), &[("pe.rows", s), ("pe.cols", s)])),
    );
    dse(
        "dse_pe_scale",
        "DSE: DiVa vs WS as the PE array scales (DP-SGD(R), Table II otherwise)",
        scales,
        "Small arrays hide WS's fill/drain overheads less than they hide DiVa's\n\
         rank-1 broadcasts; at 256x256 the small-K per-example GEMMs strand even\n\
         more WS columns, so DiVa's edge grows with the array.",
    )
}

/// DSE: output drain rate `R` (rows per cycle).
pub(in super::super) fn dse_drain_rate() -> Experiment {
    dse(
        "dse_drain_rate",
        "DSE: drain-rate R sweep (rows/cycle drained from the accumulators)",
        config_axis("drain_rows", &["2", "4", "8", "16", "32"]),
        "The paper fixes R = 8 (Section IV-C); the WS baseline has no\n\
         output-stationary drain, so its time is flat and the speedup curve\n\
         isolates how hard DiVa leans on drain bandwidth.",
    )
}

/// DSE: on-chip SRAM capacity.
pub(in super::super) fn dse_sram() -> Experiment {
    dse(
        "dse_sram",
        "DSE: SRAM capacity sweep (MiB, both design points)",
        config_axis("sram_mib", &["4", "8", "16", "32", "64"]),
        "Generalizes ablation_sram through the parameter registry: both arms\n\
         re-stream operands as SRAM shrinks, but WS additionally spills\n\
         per-example gradients, so DiVa's edge widens at small capacities.",
    )
}

/// DSE: clock frequency under the V∝f DVFS energy model — the one knob
/// where perf and energy pull in opposite directions, so the scenario
/// reports both (and is the seed of the explorer's energy objective).
pub(in super::super) fn dse_frequency() -> Experiment {
    let cfg_axis = config_axis("freq_mhz", &["470", "705", "940", "1175", "1410"]);
    let axis_name = cfg_axis.name.clone();
    let eval = Arc::new(|ctx: &CellCtx| {
        let r = ctx
            .accel()
            .run(ctx.model(), Algorithm::DpSgdReweighted, ctx.batch());
        Cell::from(&r)
    });
    Experiment::new(
        "dse_frequency",
        "DSE: clock-frequency sweep under the V-prop-f DVFS energy model (MHz, Table II nominal 940)",
        eval,
    )
    .axis(dse_models_axis())
    .axis(dse_points_axis())
    .axis(cfg_axis)
    .axis(paper_batch_axis())
    .derive(Normalize::speedup("seconds", &[("point", "WS")], "speedup"))
    .display(&["seconds", "speedup", "energy_j"])
    .pivot_on(&axis_name, "speedup")
    .reduce(
        Reduction::new(
            "DiVa speedup vs WS (geomean)",
            "speedup",
            ReduceKind::Geomean,
        )
        .filter(&[("point", "DiVa")])
        .group_by(&[axis_name.as_str()]),
    )
    .reduce(
        Reduction::new("DiVa step energy J (mean)", "energy_j", ReduceKind::Mean)
            .filter(&[("point", "DiVa")])
            .group_by(&[axis_name.as_str()]),
    )
    .note(
        "Dynamic power rides the V-prop-f rail (prop f^3), leakage prop f, so\n\
         per-MAC energy falls quadratically when underclocked while step time\n\
         and the fixed uncore charge grow — the energy-delay tradeoff the\n\
         explorer's latency x energy frontier walks."
            .to_string(),
    )
}

/// DSE: off-chip DRAM bandwidth.
pub(in super::super) fn dse_bandwidth() -> Experiment {
    dse(
        "dse_bandwidth",
        "DSE: DRAM bandwidth sweep (GB/s, Table II baseline is 450)",
        config_axis("mem.bandwidth_gbps", &["225", "450", "900", "1800"]),
        "DP-SGD's post-processing is bandwidth-bound on WS (Section III-C);\n\
         more DRAM bandwidth narrows DiVa's win while starved memory widens it —\n\
         the PPU is, in effect, bandwidth amplification.",
    )
}
