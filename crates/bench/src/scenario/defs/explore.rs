//! The `explore_frontier` scenario: a small fixed-seed Pareto search per
//! strategy, registered so `diva-report explore_frontier --compare` can
//! regression-gate the explorer like any paper figure.
//!
//! Each cell runs the *same* 4-knob / 16-point space with the cell's
//! strategy and a pinned seed, then summarizes the search as scalars: the
//! frontier size, candidate/memo counters, the best value per objective,
//! and a 32-bit FNV digest of the frontier's spec strings (`frontier_fnv`)
//! — the digest turns "the frontier changed at all" into a single gated
//! metric while staying exactly representable as an `f64`.

use std::sync::Arc;

use diva_core::DesignPoint;

use crate::explore::{
    explore, render::best_per_objective, ExploreConfig, Knob, SearchSpace, Strategy, Workload,
};
use crate::faults::fnv1a64;

use super::super::{Axis, AxisValue, Cell, CellCtx, Experiment};

/// The fixed search every cell runs (only the strategy varies): 4 knobs,
/// 2 values each, budget 12 of the 16-point grid.
fn gate_config(strategy: Strategy) -> ExploreConfig {
    let knob = |param: &str, values: &[&str]| Knob {
        param: param.to_string(),
        values: values.iter().map(|v| v.to_string()).collect(),
    };
    let space = SearchSpace {
        base: DesignPoint::Diva,
        knobs: vec![
            knob("pe.rows", &["64", "128"]),
            knob("freq_mhz", &["470", "940"]),
            knob("sram_mib", &["8", "16"]),
            knob("drain_rows", &["4", "8"]),
        ],
    };
    let mut cfg = ExploreConfig::new(space);
    cfg.strategy = strategy;
    cfg.seed = 42;
    cfg.budget = 12;
    cfg.batch_size = 4;
    cfg.workloads = vec![
        Workload::parse("squeezenet@8").expect("gate workload"),
        Workload::parse("lstm_small@8").expect("gate workload"),
    ];
    cfg
}

/// Builds the registered experiment.
pub(in super::super) fn explore_frontier() -> Experiment {
    let eval = Arc::new(|ctx: &CellCtx| {
        let strategy = Strategy::parse(ctx.label("strategy")).expect("axis carries valid slugs");
        let result = explore(&gate_config(strategy)).expect("fixed gate search cannot fail");
        let specs: Vec<&[u8]> = result
            .frontier
            .points()
            .iter()
            .map(|p| p.spec.as_bytes())
            .collect();
        // Truncate to 32 bits so the digest survives the f64 metric path
        // exactly (f64 holds integers up to 2^53).
        let digest = (fnv1a64(&specs) & 0xffff_ffff) as f64;
        let mut cell = Cell::new()
            .metric("evaluated", result.evaluated.len() as f64)
            .metric("frontier_size", result.frontier.len() as f64)
            .metric("memo_lookups", result.stats.memo.lookups as f64)
            .metric("memo_computed", result.stats.memo.computed as f64)
            .metric("frontier_fnv", digest);
        for (objective, best) in best_per_objective(&result) {
            cell = cell.metric(format!("best_{}", objective.metric()), best);
        }
        cell.note("frontier_top", {
            result
                .frontier
                .points()
                .first()
                .map(|p| p.spec.clone())
                .unwrap_or_default()
        })
    });
    Experiment::new(
        "explore_frontier",
        "Explorer regression gate: fixed-seed 12-candidate search per strategy \
         (4 knobs around DiVa, latency x energy x area)",
        eval,
    )
    .axis(Axis::new(
        "strategy",
        ["grid", "random", "halving"].map(AxisValue::label),
    ))
    .display(&[
        "evaluated",
        "frontier_size",
        "memo_computed",
        "best_latency_s",
        "best_energy_j",
        "best_area_mm2",
        "frontier_fnv",
    ])
    .note(
        "frontier_fnv digests the frontier's candidate specs; any change to\n\
         generation order, dominance or tie-breaking moves it, so --compare\n\
         catches explorer regressions without storing whole frontiers."
            .to_string(),
    )
}
