//! The registered scenario definitions — one [`Experiment`] builder per
//! paper figure, table and ablation, grouped by artifact family.
//!
//! These are pure *declarations*: each builder wires axes, a per-cell
//! closure over the simulation/energy/memory substrate, derived-metric
//! rules and reductions. All execution, filtering, aggregation and output
//! formatting lives in the shared scenario runner.

pub(super) mod ablations;
pub(super) mod accounting;
pub(super) mod dse;
pub(super) mod explore;
pub(super) mod figures;
pub(super) mod sensitivity;
pub(super) mod tables;

use super::{Axis, AxisValue};
use diva_core::{Accelerator, DesignPoint, DesignSpec};
use diva_workload::{zoo, Algorithm};

/// The full nine-model zoo as a `"model"` axis.
pub(super) fn models_axis() -> Axis {
    Axis::new("model", zoo::all_models().into_iter().map(AxisValue::model))
}

/// The given design points as a `"point"` axis of built accelerators.
pub(super) fn points_axis(points: &[DesignPoint]) -> Axis {
    Axis::new(
        "point",
        points.iter().map(|&p| {
            AxisValue::accel(Accelerator::from_design_point(p).expect("preset configs validate"))
        }),
    )
}

/// A `"point"` axis built from [`DesignSpec`]s — the preset+override path
/// of the design-point layer. Specs are scenario-definition constants, so
/// a bad one is a build bug (panic), not a user error.
pub(super) fn spec_points_axis(specs: &[DesignSpec]) -> Axis {
    Axis::new(
        "point",
        specs.iter().map(|s| {
            AxisValue::accel(
                Accelerator::from_spec(s).unwrap_or_else(|e| panic!("design spec {s}: {e}")),
            )
        }),
    )
}

/// A single-parameter **config axis** named after the registered
/// parameter: each value carries the override the runner applies to the
/// cell's accelerator arm (see [`super::Payload::Overrides`]).
pub(super) fn config_axis(param: &'static str, values: &[&str]) -> Axis {
    Axis::new(
        param,
        values
            .iter()
            .map(|v| AxisValue::overrides(*v, &[(param, v)])),
    )
}

/// The given algorithms as an `"algorithm"` axis.
pub(super) fn algorithms_axis(algs: &[Algorithm]) -> Axis {
    Axis::new("algorithm", algs.iter().copied().map(AxisValue::algorithm))
}

/// The paper batch policy as a single-valued `"batch"` axis (replaceable
/// via `--batch`).
pub(super) fn paper_batch_axis() -> Axis {
    Axis::new("batch", [AxisValue::batch_paper()])
}

/// A fixed batch size as a single-valued `"batch"` axis.
pub(super) fn fixed_batch_axis(b: u64) -> Axis {
    Axis::new("batch", [AxisValue::batch(b)])
}
