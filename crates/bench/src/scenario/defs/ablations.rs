//! Scenario definitions for the ablation studies (drain overlap, SRAM
//! capacity, vanilla DP-SGD).

use std::sync::Arc;

use diva_core::{Accelerator, DesignPoint};
use diva_workload::{zoo, Algorithm};

use crate::fmt_bytes;

use super::super::{Axis, AxisValue, Cell, CellCtx, Experiment, Normalize, ReduceKind, Reduction};
use super::{algorithms_axis, fixed_batch_axis, models_axis, paper_batch_axis, points_axis};

/// Ablation: shadow-accumulator drain/compute overlap on DiVa.
pub(in super::super) fn ablation_drain_overlap() -> Experiment {
    let mut overlap_cfg = DesignPoint::Diva.config();
    overlap_cfg.drain_overlap = true;
    let points = Axis::new(
        "point",
        [
            AxisValue::accel(
                Accelerator::from_design_point(DesignPoint::Diva).expect("preset configs validate"),
            ),
            AxisValue::accel(
                Accelerator::from_config("DiVa+overlap", overlap_cfg).expect("valid config"),
            ),
        ],
    );
    let eval = Arc::new(|ctx: &CellCtx| {
        let r = ctx
            .accel()
            .run(ctx.model(), Algorithm::DpSgdReweighted, ctx.batch());
        Cell::from(&r)
    });
    Experiment::new(
        "ablation_drain_overlap",
        "Ablation: drain/compute overlap (shadow accumulators), DP-SGD(R) on DiVa",
        eval,
    )
    .axis(models_axis())
    .axis(points)
    .axis(paper_batch_axis())
    .derive(Normalize::speedup("seconds", &[("point", "DiVa")], "gain"))
    .display(&["seconds", "gain"])
    .pivot_on("point", "gain")
    .reduce(
        Reduction::new("Average overlap gain", "gain", ReduceKind::Mean)
            .filter(&[("point", "DiVa+overlap")]),
    )
    .note(
        "The serial drain costs little at R = 8 because K usually exceeds 128/R;\n\
         overlap pays off only for the tiniest-K layers.",
    )
}

/// Ablation: SRAM capacity sweep on the WS baseline and DiVa.
pub(in super::super) fn ablation_sram() -> Experiment {
    let model = zoo::resnet50();
    let sizes: [u64; 5] = [2 << 20, 4 << 20, 8 << 20, 16 << 20, 64 << 20];
    let eval = Arc::new(move |ctx: &CellCtx| {
        let design = match ctx.label("point") {
            "WS" => DesignPoint::WsBaseline,
            "DiVa" => DesignPoint::Diva,
            other => panic!("unknown design {other:?}"),
        };
        let mut cfg = design.config();
        cfg.sram_bytes = ctx.num("sram") as u64;
        let accel = Accelerator::from_config(design.label(), cfg).expect("valid config");
        let r = accel.run(&model, Algorithm::DpSgdReweighted, ctx.batch_for(&model));
        Cell::new()
            .metric("seconds", r.seconds)
            .metric("dram_bytes", r.timing.total_dram_bytes() as f64)
            .note("dram_traffic", fmt_bytes(r.timing.total_dram_bytes()))
    });
    Experiment::new(
        "ablation_sram",
        "Ablation: SRAM capacity sweep (ResNet-50, DP-SGD(R), batch 64)",
        eval,
    )
    .axis(Axis::new(
        "point",
        ["WS", "DiVa"].into_iter().map(AxisValue::label),
    ))
    .axis(Axis::new(
        "sram",
        sizes
            .iter()
            .map(|&s| AxisValue::num(fmt_bytes(s), s as f64)),
    ))
    .axis(fixed_batch_axis(64))
    .pivot_on("sram", "seconds")
    .note(
        "Smaller SRAM forces operand re-streaming (more DRAM traffic); DiVa's PPU\n\
         fusion makes it far less sensitive than the WS baseline, whose post-processing\n\
         spills scale with gradient size, not SRAM.",
    )
}

/// Ablation: Figure 13 rerun with vanilla DP-SGD instead of DP-SGD(R).
pub(in super::super) fn ablation_vanilla_dpsgd() -> Experiment {
    let eval = Arc::new(|ctx: &CellCtx| {
        let r = ctx.accel().run(ctx.model(), ctx.algorithm(), ctx.batch());
        Cell::from(&r)
    });
    Experiment::new(
        "ablation_vanilla_dpsgd",
        "Ablation: DiVa speedup vs WS under vanilla DP-SGD vs DP-SGD(R)",
        eval,
    )
    .axis(models_axis())
    .axis(algorithms_axis(&[
        Algorithm::DpSgd,
        Algorithm::DpSgdReweighted,
    ]))
    .axis(points_axis(&[DesignPoint::WsBaseline, DesignPoint::Diva]))
    .axis(paper_batch_axis())
    .derive(Normalize::speedup("seconds", &[("point", "WS")], "speedup"))
    .display(&["seconds", "speedup"])
    .pivot_on("algorithm", "speedup")
    .reduce(
        Reduction::new("DiVa speedup vs WS (mean)", "speedup", ReduceKind::Mean)
            .filter(&[("point", "DiVa")])
            .group_by(&["algorithm"]),
    )
    .note(
        "The hardware needs the algorithm: without DP-SGD(R)'s ephemeral gradients\n\
         the spill traffic caps the win.",
    )
}
