//! Scenario definitions for the Section VI-C sensitivity studies: DiVa's
//! edge as image area or sequence length grows.

use std::sync::Arc;

use diva_core::{DesignPoint, DesignSpec};
use diva_workload::{zoo, Algorithm, ModelSpec};

use super::super::{Axis, AxisValue, Cell, CellCtx, Experiment, Normalize, ReduceKind, Reduction};
use super::{paper_batch_axis, spec_points_axis};

/// The WS-vs-DiVa comparison expressed through the design-space layer:
/// DiVa is the WS preset with its engine retargeted via registered
/// parameter overrides (`dataflow=diva`, `ppu=true`), which resolves to a
/// configuration bit-identical to the `DesignPoint::Diva` preset — pinned
/// by `sensitivity_matches_legacy_design_points` in
/// `crates/bench/tests/scenario_tests.rs`.
fn sensitivity_points_axis() -> Axis {
    spec_points_axis(&[
        DesignSpec::preset(DesignPoint::WsBaseline),
        DesignSpec::preset(DesignPoint::WsBaseline)
            .with("dataflow", "diva")
            .with("ppu", "true")
            .named("DiVa"),
    ])
}

/// A named parameterized model builder (input side or sequence length).
type ModelBuilder = (&'static str, fn(usize) -> ModelSpec);

/// Shared shape of both sensitivity sweeps: (model-builder × scale ×
/// design-point) grid measuring DP-SGD(R) step time and the DiVa-vs-WS
/// speedup at each scale.
fn sensitivity(
    name: &'static str,
    title: &str,
    builders: Vec<ModelBuilder>,
    scale_axis: Axis,
    paper_note: &str,
) -> Experiment {
    let model_axis = Axis::new(
        "model",
        builders.iter().map(|(label, _)| AxisValue::label(*label)),
    );
    let eval = Arc::new(move |ctx: &CellCtx| {
        let build = builders
            .iter()
            .find(|(label, _)| *label == ctx.label("model"))
            .map(|(_, f)| *f)
            .expect("model axis label");
        let model = build(ctx.num("scale") as usize);
        let batch = ctx.batch_for(&model);
        let r = ctx.accel().run(&model, Algorithm::DpSgdReweighted, batch);
        Cell::new()
            .metric("seconds", r.seconds)
            .metric("batch_used", batch as f64)
    });
    Experiment::new(name, title, eval)
        .axis(model_axis)
        .axis(scale_axis)
        .axis(sensitivity_points_axis())
        .axis(paper_batch_axis())
        .derive(Normalize::speedup("seconds", &[("point", "WS")], "speedup"))
        .display(&["seconds", "speedup"])
        .pivot_on("scale", "speedup")
        .reduce(
            Reduction::new("DiVa speedup vs WS (mean)", "speedup", ReduceKind::Mean)
                .filter(&[("point", "DiVa")])
                .group_by(&["scale"]),
        )
        .note(paper_note.to_string())
}

/// Image-size sweep over the five CNNs (pixels ×1/×4/×16/×64).
pub(in super::super) fn sensitivity_image() -> Experiment {
    let builders: Vec<ModelBuilder> = vec![
        ("VGG-16", zoo::vgg16_at),
        ("ResNet-50", zoo::resnet50_at),
        ("ResNet-152", zoo::resnet152_at),
        ("SqueezeNet", zoo::squeezenet_at),
        ("MobileNet", zoo::mobilenet_at),
    ];
    let scales = Axis::new(
        "scale",
        [32usize, 64, 128, 256]
            .iter()
            .map(|&s| AxisValue::num(format!("{s}x{s}"), s as f64)),
    );
    sensitivity(
        "sensitivity_image",
        "Sensitivity: DiVa speedup vs WS as image size grows (pixels x1/x4/x16/x64)",
        builders,
        scales,
        "(paper averages: 3.6x / 2.1x / 1.7x at x4/x16/x64)",
    )
}

/// Sequence-length sweep over BERT/LSTM (L = 32/64/128/256).
pub(in super::super) fn sensitivity_seq() -> Experiment {
    let builders: Vec<ModelBuilder> = vec![
        ("BERT-base", zoo::bert_base_with_seq),
        ("BERT-large", zoo::bert_large_with_seq),
        ("LSTM-small", zoo::lstm_small_with_seq),
        ("LSTM-large", zoo::lstm_large_with_seq),
    ];
    let scales = Axis::new(
        "scale",
        [32usize, 64, 128, 256]
            .iter()
            .map(|&s| AxisValue::num(format!("L={s}"), s as f64)),
    );
    sensitivity(
        "sensitivity_seq",
        "Sensitivity: DiVa speedup vs WS as sequence length grows (L = 32/64/128/256)",
        builders,
        scales,
        "(paper averages: 2.0x / 1.6x / 1.5x at x2/x4/x8)",
    )
}
