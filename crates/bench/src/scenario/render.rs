//! Rendering of a [`ScenarioResult`]: aligned text tables (long form or
//! pivoted) with summary lines, and CSV in long form.

use super::runner::{ResultRow, RowStatus, ScenarioResult, Summary};
use crate::print_table;

/// Formats a value to `sig` significant digits (plain decimal notation;
/// `inf`/`nan` render as `inf`/`-`).
pub fn fmt_sig(v: f64, sig: usize) -> String {
    if v.is_nan() {
        return "-".to_string();
    }
    if v.is_infinite() {
        return if v > 0.0 { "inf" } else { "-inf" }.to_string();
    }
    if v == 0.0 {
        return "0".to_string();
    }
    let mag = v.abs().log10().floor() as i32;
    let decimals = (sig as i32 - 1 - mag).clamp(0, 6) as usize;
    format!("{v:.decimals$}")
}

/// The ordered union of metric names across rows, restricted to
/// `display` when non-empty.
fn metric_columns(result: &ScenarioResult) -> Vec<String> {
    if !result.display_metrics.is_empty() {
        return result.display_metrics.clone();
    }
    metric_columns_all(result)
}

/// The ordered union of note names across rows.
fn note_columns(result: &ScenarioResult) -> Vec<String> {
    let mut cols: Vec<String> = Vec::new();
    for row in &result.rows {
        for (k, _) in &row.notes {
            if !cols.contains(k) {
                cols.push(k.clone());
            }
        }
    }
    cols
}

/// Prints the result as an aligned text table (pivoted when the experiment
/// declared a pivot), followed by summary and commentary lines.
pub fn print_result(result: &ScenarioResult) {
    match &result.pivot {
        Some((axis, metric)) if result.axes.iter().any(|a| &a.name == axis) => {
            print_pivot(result, axis, metric);
        }
        _ => print_long(result),
    }
    print_summaries(&result.summaries);
    for note in &result.notes {
        println!("{note}");
    }
}

/// A failed row's one-word marker for tables and CSV.
fn status_marker(row: &ResultRow) -> String {
    match &row.status {
        RowStatus::Ok => "ok".to_string(),
        RowStatus::Failed { kind, .. } => kind.slug().to_string(),
    }
}

/// Long form: one row per grid cell, columns = axes + notes + metrics,
/// plus a status column when any cell failed (`--keep-going`).
fn print_long(result: &ScenarioResult) {
    let metrics = metric_columns(result);
    let notes = note_columns(result);
    let any_failed = result.rows.iter().any(|r| !r.status.is_ok());
    let mut headers: Vec<&str> = result.axes.iter().map(|a| a.name.as_str()).collect();
    if any_failed {
        headers.push("status");
    }
    headers.extend(notes.iter().map(String::as_str));
    headers.extend(metrics.iter().map(String::as_str));
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|row| {
            let mut cells: Vec<String> = result
                .axes
                .iter()
                .map(|a| row.coord(&a.name).unwrap_or("-").to_string())
                .collect();
            if any_failed {
                cells.push(status_marker(row));
            }
            for n in &notes {
                cells.push(
                    row.notes
                        .iter()
                        .find(|(k, _)| k == n)
                        .map(|(_, v)| v.clone())
                        .unwrap_or_else(|| "-".to_string()),
                );
            }
            for m in &metrics {
                cells.push(
                    row.get(m)
                        .map_or_else(|| "-".to_string(), |v| fmt_sig(v, 4)),
                );
            }
            cells
        })
        .collect();
    print_table(&result.title, &headers, &rows);
}

/// Pivoted form: the pivot axis becomes columns showing one metric; rows
/// are the remaining axes in grid order.
fn print_pivot(result: &ScenarioResult, axis: &str, metric: &str) {
    let pivot_labels = result
        .axes
        .iter()
        .find(|a| a.name == axis)
        .map(|a| a.labels.clone())
        .unwrap_or_default();
    let other_axes: Vec<&str> = result
        .axes
        .iter()
        .map(|a| a.name.as_str())
        .filter(|n| *n != axis)
        .collect();
    let mut headers: Vec<&str> = other_axes.clone();
    headers.extend(pivot_labels.iter().map(String::as_str));

    // Group rows by their non-pivot coordinates, preserving grid order.
    let mut grouped: Vec<(Vec<String>, Vec<String>)> = Vec::new();
    for row in &result.rows {
        let key: Vec<String> = other_axes
            .iter()
            .map(|a| row.coord(a).unwrap_or("-").to_string())
            .collect();
        let col = row.coord(axis).unwrap_or("-");
        let ci = pivot_labels.iter().position(|l| l == col);
        // Failed cells show their failure kind where the value would be.
        let value = if row.status.is_ok() {
            row.get(metric)
                .map_or_else(|| "-".to_string(), |v| fmt_sig(v, 4))
        } else {
            format!("!{}", status_marker(row))
        };
        let pos = match grouped.iter().position(|(k, _)| *k == key) {
            Some(pos) => pos,
            None => {
                grouped.push((key, vec!["-".to_string(); pivot_labels.len()]));
                grouped.len() - 1
            }
        };
        if let Some(ci) = ci {
            grouped[pos].1[ci] = value;
        }
    }
    let rows: Vec<Vec<String>> = grouped
        .into_iter()
        .map(|(mut key, cells)| {
            key.extend(cells);
            key
        })
        .collect();
    print_table(&format!("{} [{metric}]", result.title), &headers, &rows);
}

/// Prints summary lines (`label [group]: value (paper: ...)`).
fn print_summaries(summaries: &[Summary]) {
    if summaries.is_empty() {
        return;
    }
    println!();
    for s in summaries {
        let group = if s.group.is_empty() {
            String::new()
        } else {
            let pins: Vec<String> = s.group.iter().map(|(a, l)| format!("{a}={l}")).collect();
            format!(" [{}]", pins.join(", "))
        };
        let paper = s
            .paper
            .map(|p| format!(" (paper: {p})"))
            .unwrap_or_default();
        let skipped = if s.skipped > 0 {
            format!(" ({} failed cell(s) skipped)", s.skipped)
        } else {
            String::new()
        };
        println!(
            "{}{group}: {} {} over {} cells{skipped}{paper}",
            s.label,
            fmt_sig(s.value, 4),
            s.kind.slug(),
            s.count
        );
    }
}

/// Renders the result as CSV in long form: axis columns, then note
/// columns, then the union of metric columns (missing values empty).
/// Values are emitted with full `f64` round-trip precision.
pub fn to_csv(result: &ScenarioResult) -> String {
    let metrics = metric_columns_all(result);
    let notes = note_columns(result);
    // Clean runs keep the pre-fault-tolerance column set; status/error
    // columns appear only when a cell actually failed (`--keep-going`).
    let any_failed = result.rows.iter().any(|r| !r.status.is_ok());
    let mut out = String::new();
    let mut header: Vec<String> = result.axes.iter().map(|a| a.name.clone()).collect();
    if any_failed {
        header.push("status".to_string());
        header.push("error".to_string());
    }
    header.extend(notes.iter().cloned());
    header.extend(metrics.iter().cloned());
    out.push_str(&csv_line(&header));
    for row in &result.rows {
        let mut cells: Vec<String> = result
            .axes
            .iter()
            .map(|a| row.coord(&a.name).unwrap_or("").to_string())
            .collect();
        if any_failed {
            cells.push(status_marker(row));
            cells.push(match &row.status {
                RowStatus::Ok => String::new(),
                RowStatus::Failed { error, .. } => error.clone(),
            });
        }
        for n in &notes {
            cells.push(
                row.notes
                    .iter()
                    .find(|(k, _)| k == n)
                    .map(|(_, v)| v.clone())
                    .unwrap_or_default(),
            );
        }
        for m in &metrics {
            cells.push(row.get(m).map_or_else(String::new, |v| format!("{v}")));
        }
        out.push_str(&csv_line(&cells));
    }
    out
}

/// CSV always carries every metric, ignoring the display restriction.
fn metric_columns_all(result: &ScenarioResult) -> Vec<String> {
    let mut cols: Vec<String> = Vec::new();
    for row in &result.rows {
        for (k, _) in &row.metrics {
            if !cols.contains(k) {
                cols.push(k.clone());
            }
        }
    }
    cols
}

/// Quotes fields containing separators per RFC 4180.
fn csv_line(cells: &[String]) -> String {
    let quoted: Vec<String> = cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect();
    format!("{}\n", quoted.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn significant_digit_formatting() {
        assert_eq!(fmt_sig(3.60523, 4), "3.605");
        assert_eq!(fmt_sig(1234.56, 4), "1235");
        assert_eq!(fmt_sig(0.0012344, 4), "0.001234"); // capped at 6 decimals
        assert_eq!(fmt_sig(0.0, 4), "0");
        assert_eq!(fmt_sig(f64::INFINITY, 4), "inf");
        assert_eq!(fmt_sig(f64::NAN, 4), "-");
    }

    #[test]
    fn csv_quotes_fields_with_separators() {
        assert_eq!(
            csv_line(&["a,b".to_string(), "plain".to_string()]),
            "\"a,b\",plain\n"
        );
    }
}
