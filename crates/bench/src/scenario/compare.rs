//! `diva-report --compare`: cell-by-cell diffing of two
//! `diva-scenario/v1` documents — the analytic-model counterpart of the
//! `bench_regress` CI gate.
//!
//! Records are matched by their axis coordinates (the axis names come
//! from the document itself), every shared numeric metric's relative
//! delta is aggregated per metric, and the **gated** metrics — the
//! ratio-normalized columns named by the document's `derived` field, or
//! every metric when a scenario declares none — decide the exit code:
//! any gated drift beyond the tolerance is a violation. Raw metrics
//! (seconds, cycles, joules) are reported but do not gate, mirroring
//! `bench_regress`'s machine-portable relative-speedup policy.

use super::json::{parse_scenario_json, ParsedScenario};
use crate::perf::PerfRecord;

/// Aggregated drift of one metric across all matched record pairs.
#[derive(Clone, Debug)]
pub struct MetricDrift {
    /// Metric name.
    pub metric: String,
    /// Whether this metric gates the exit code.
    pub gated: bool,
    /// How many record pairs carried the metric on both sides.
    pub compared: usize,
    /// The largest relative delta `|b - a| / |a|` observed (infinite when
    /// a value appeared or vanished, or moved away from exactly zero).
    pub max_rel: f64,
    /// The coordinates of the worst cell, for the report.
    pub worst: String,
}

/// The outcome of comparing two scenario documents.
#[derive(Clone, Debug)]
pub struct CompareReport {
    /// The scenario both documents describe.
    pub scenario: String,
    /// The gate threshold on relative drift.
    pub tolerance: f64,
    /// The metric names that gate the exit code.
    pub gated: Vec<String>,
    /// Matched record pairs.
    pub matched: usize,
    /// Record keys present only in the first document.
    pub only_in_a: Vec<String>,
    /// Record keys present only in the second document.
    pub only_in_b: Vec<String>,
    /// Per-metric aggregated drift, document order, records then
    /// reductions.
    pub drifts: Vec<MetricDrift>,
}

impl CompareReport {
    /// `true` when no gated metric drifted beyond the tolerance and the
    /// two documents cover the same cells.
    pub fn passed(&self) -> bool {
        self.only_in_a.is_empty()
            && self.only_in_b.is_empty()
            && self
                .drifts
                .iter()
                .all(|d| !d.gated || d.max_rel <= self.tolerance)
    }

    /// The gated drifts beyond tolerance.
    pub fn violations(&self) -> Vec<&MetricDrift> {
        self.drifts
            .iter()
            .filter(|d| d.gated && d.max_rel > self.tolerance)
            .collect()
    }

    /// Renders the per-metric delta table plus the verdict as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "compare {}: {} matched cells, tolerance {:.1}% on [{}]\n",
            self.scenario,
            self.matched,
            self.tolerance * 100.0,
            self.gated.join(", ")
        ));
        for key in &self.only_in_a {
            out.push_str(&format!("  cell only in first document:  {key}\n"));
        }
        for key in &self.only_in_b {
            out.push_str(&format!("  cell only in second document: {key}\n"));
        }
        for d in &self.drifts {
            let gate = if d.gated { "gated" } else { "info " };
            let flag = if d.gated && d.max_rel > self.tolerance {
                "  <-- VIOLATION"
            } else {
                ""
            };
            out.push_str(&format!(
                "  [{gate}] {:<32} max drift {:>9} over {} cells{}{flag}\n",
                d.metric,
                format!("{:.3}%", d.max_rel * 100.0),
                d.compared,
                if d.max_rel > 0.0 && !d.worst.is_empty() {
                    format!("  (worst: {})", d.worst)
                } else {
                    String::new()
                },
            ));
        }
        let verdict = if self.passed() {
            format!(
                "OK: no gated metric drifted more than {:.1}%",
                self.tolerance * 100.0
            )
        } else {
            format!(
                "FAIL: {} gated metric(s) drifted more than {:.1}%{}",
                self.violations().len(),
                self.tolerance * 100.0,
                if self.only_in_a.is_empty() && self.only_in_b.is_empty() {
                    ""
                } else {
                    " (and the documents cover different cells)"
                }
            )
        };
        out.push_str(&verdict);
        out.push('\n');
        out
    }
}

/// A record's identity: its coordinates along the document's axes.
fn record_key(record: &PerfRecord, axis_names: &[String]) -> String {
    axis_names
        .iter()
        .map(|a| format!("{a}={}", record.tag_value(a).unwrap_or("-")))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Relative delta of `b` vs `a`; infinite when one side is exactly zero
/// (or missing) and the other is not.
fn rel_delta(a: Option<f64>, b: Option<f64>) -> f64 {
    match (a, b) {
        (None, None) => 0.0,
        (Some(a), Some(b)) => {
            if a == b {
                0.0
            } else if a == 0.0 {
                f64::INFINITY
            } else {
                ((b - a) / a).abs()
            }
        }
        _ => f64::INFINITY,
    }
}

/// The ordered union of metric names across a record list.
fn metric_union(records: &[PerfRecord]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for r in records {
        for (k, _) in &r.metrics {
            if !names.contains(k) {
                names.push(k.clone());
            }
        }
    }
    names
}

/// Compares two `diva-scenario/v1` documents cell-by-cell.
///
/// # Errors
///
/// Returns a description when either document fails to parse or the two
/// describe different scenarios (comparing apples to oranges is a usage
/// error, not a regression).
pub fn compare_docs(a_text: &str, b_text: &str, tolerance: f64) -> Result<CompareReport, String> {
    let a = parse_scenario_json(a_text).map_err(|e| format!("first document: {e}"))?;
    let b = parse_scenario_json(b_text).map_err(|e| format!("second document: {e}"))?;
    if a.scenario != b.scenario {
        return Err(format!(
            "documents describe different scenarios: {:?} vs {:?}",
            a.scenario, b.scenario
        ));
    }
    if a.overrides != b.overrides {
        return Err(format!(
            "documents were produced under different --set overrides: \
             {:?} vs {:?} — drift between them is a config difference, \
             not a regression",
            a.overrides, b.overrides
        ));
    }
    Ok(compare_parsed(&a, &b, tolerance))
}

fn compare_parsed(a: &ParsedScenario, b: &ParsedScenario, tolerance: f64) -> CompareReport {
    let axis_names: Vec<String> = a.axes.iter().map(|(n, _)| n.clone()).collect();
    let metrics = {
        let mut m = metric_union(&a.records);
        for extra in metric_union(&b.records) {
            if !m.contains(&extra) {
                m.push(extra);
            }
        }
        m
    };
    // Gate on the document's declared derived (ratio) metrics; a scenario
    // with none declared gates on everything it has.
    let gated: Vec<String> = if a.derived.is_empty() {
        metrics.clone()
    } else {
        a.derived.clone()
    };

    let b_keyed: Vec<(String, &PerfRecord)> = b
        .records
        .iter()
        .map(|r| (record_key(r, &axis_names), r))
        .collect();
    let mut only_in_a = Vec::new();
    let mut matched: Vec<(&PerfRecord, &PerfRecord)> = Vec::new();
    let mut seen_b: Vec<bool> = vec![false; b_keyed.len()];
    for ra in &a.records {
        let key = record_key(ra, &axis_names);
        match b_keyed.iter().position(|(k, _)| *k == key) {
            Some(i) => {
                seen_b[i] = true;
                matched.push((ra, b_keyed[i].1));
            }
            None => only_in_a.push(key),
        }
    }
    let mut only_in_b: Vec<String> = b_keyed
        .iter()
        .zip(&seen_b)
        .filter(|(_, &seen)| !seen)
        .map(|((k, _), _)| k.clone())
        .collect();

    let mut drifts: Vec<MetricDrift> = Vec::new();
    for metric in &metrics {
        let mut max_rel = 0.0f64;
        let mut compared = 0usize;
        let mut worst = String::new();
        for (ra, rb) in &matched {
            let (va, vb) = (ra.metric_value(metric), rb.metric_value(metric));
            if va.is_none() && vb.is_none() {
                continue;
            }
            compared += 1;
            let rel = rel_delta(va, vb);
            if rel > max_rel {
                max_rel = rel;
                worst = record_key(ra, &axis_names);
            }
        }
        if compared > 0 {
            drifts.push(MetricDrift {
                metric: metric.clone(),
                gated: gated.contains(metric),
                compared,
                max_rel,
                worst,
            });
        }
    }

    // Reductions: matched by (label, group), their values drift-checked
    // under the reduction's source metric's gating. A reduction present
    // on only one side is structural drift, reported like a missing cell
    // (and failing the comparison).
    let red_key = |r: &PerfRecord| {
        format!(
            "reduction: {} [{}]",
            r.name,
            r.tag_value("group").unwrap_or_default()
        )
    };
    for ra in &a.reductions {
        let Some(rb) = b.reductions.iter().find(|rb| red_key(rb) == red_key(ra)) else {
            only_in_a.push(red_key(ra));
            continue;
        };
        let rel = rel_delta(ra.metric_value("value"), rb.metric_value("value"));
        let source = ra.tag_value("metric").unwrap_or_default().to_string();
        drifts.push(MetricDrift {
            metric: red_key(ra),
            gated: gated.contains(&source),
            compared: 1,
            max_rel: rel,
            worst: String::new(),
        });
    }
    for rb in &b.reductions {
        if !a.reductions.iter().any(|ra| red_key(ra) == red_key(rb)) {
            only_in_b.push(red_key(rb));
        }
    }

    CompareReport {
        scenario: a.scenario.clone(),
        tolerance,
        gated,
        matched: matched.len(),
        only_in_a,
        only_in_b,
        drifts,
    }
}

#[cfg(test)]
mod tests {
    use super::super::json::to_json;
    use super::super::runner::{AxisMeta, ResultRow, ScenarioResult, Summary};
    use super::super::ReduceKind;
    use super::*;

    /// A two-cell result with one raw and one derived metric.
    fn doc(seconds: [f64; 2], speedup: f64) -> String {
        let row = |point: &str, secs: f64, sp: f64| ResultRow {
            coords: vec![
                ("model".into(), "VGG-16".into()),
                ("point".into(), point.into()),
            ],
            metrics: vec![("seconds".into(), secs), ("speedup".into(), sp)],
            notes: Vec::new(),
            status: Default::default(),
        };
        to_json(&ScenarioResult {
            name: "toy".into(),
            title: "toy".into(),
            axes: vec![
                AxisMeta {
                    name: "model".into(),
                    labels: vec!["VGG-16".into()],
                },
                AxisMeta {
                    name: "point".into(),
                    labels: vec!["WS".into(), "DiVa".into()],
                },
            ],
            rows: vec![row("WS", seconds[0], 1.0), row("DiVa", seconds[1], speedup)],
            summaries: vec![Summary {
                label: "mean speedup".into(),
                metric: "speedup".into(),
                kind: ReduceKind::Mean,
                group: Vec::new(),
                value: (1.0 + speedup) / 2.0,
                count: 2,
                skipped: 0,
                paper: None,
            }],
            display_metrics: Vec::new(),
            pivot: None,
            notes: Vec::new(),
            derived_metrics: vec!["speedup".into()],
            overrides: Vec::new(),
            failures: Vec::new(),
        })
    }

    #[test]
    fn identical_documents_pass_with_zero_drift() {
        let a = doc([4.0, 1.0], 4.0);
        let report = compare_docs(&a, &a, 0.05).expect("compares");
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.matched, 2);
        assert!(report.drifts.iter().all(|d| d.max_rel == 0.0));
        assert!(report.render().contains("OK"));
    }

    #[test]
    fn gated_drift_beyond_tolerance_fails() {
        let a = doc([4.0, 1.0], 4.0);
        // 10% speedup regression: gated metric, must fail at 5%.
        let b = doc([4.0, 1.1], 3.6);
        let report = compare_docs(&a, &b, 0.05).expect("compares");
        assert!(!report.passed(), "{}", report.render());
        let violations = report.violations();
        assert!(violations.iter().any(|d| d.metric == "speedup"));
        assert!(report.render().contains("VIOLATION"));
        // The same drift passes under a looser gate.
        assert!(compare_docs(&a, &b, 0.15).unwrap().passed());
    }

    #[test]
    fn raw_metric_drift_is_reported_but_not_gated() {
        let a = doc([4.0, 1.0], 4.0);
        // Both arms 50% slower, ratio unchanged: like a host change in
        // bench_regress, this must not fail the gate.
        let b = doc([6.0, 1.5], 4.0);
        let report = compare_docs(&a, &b, 0.05).expect("compares");
        assert!(report.passed(), "{}", report.render());
        let secs = report
            .drifts
            .iter()
            .find(|d| d.metric == "seconds")
            .expect("seconds drift reported");
        assert!(!secs.gated);
        assert!((secs.max_rel - 0.5).abs() < 1e-12);
    }

    #[test]
    fn missing_cells_fail_the_comparison() {
        let a = doc([4.0, 1.0], 4.0);
        let mut short = doc([4.0, 1.0], 4.0);
        // Swap the DiVa record for one at a coordinate A doesn't have
        // (duplicating an existing coordinate is rejected at parse time).
        let at = short.find("\"point\": \"DiVa\"").unwrap();
        let open = short[..at].rfind('{').unwrap();
        let close = at + short[at..].find('}').unwrap();
        short.replace_range(open..=close, "{\"name\": \"toy\", \"model\": \"VGG-16\", \"point\": \"Other\", \"seconds\": 4.0, \"speedup\": 1.0}");
        let report = compare_docs(&a, &short, 0.05).expect("compares");
        assert!(!report.passed());
        assert!(!report.only_in_a.is_empty());
    }

    #[test]
    fn different_scenarios_are_a_usage_error() {
        let a = doc([4.0, 1.0], 4.0);
        let b = a.replace("\"scenario\": \"toy\"", "\"scenario\": \"other\"");
        assert!(compare_docs(&a, &b, 0.05).is_err());
    }

    #[test]
    fn different_set_overrides_are_a_usage_error() {
        let a = doc([4.0, 1.0], 4.0);
        let b = a.replace("\"overrides\": \"\"", "\"overrides\": \"sram_mib=8\"");
        let err = compare_docs(&a, &b, 0.05).unwrap_err();
        assert!(err.contains("sram_mib=8"), "{err}");
        assert!(err.contains("config difference"), "{err}");
    }

    #[test]
    fn missing_reductions_fail_like_missing_cells() {
        let a = doc([4.0, 1.0], 4.0);
        // Empty the reductions array in the second document (the array
        // holds flat objects only, so the first ']' after it closes it).
        let open = a.find("\"reductions\": [").unwrap() + "\"reductions\": [".len();
        let close = a[open..].find(']').unwrap() + open;
        let mut b = a.clone();
        b.replace_range(open..close, "\n  ");
        let report = compare_docs(&a, &b, 0.05).expect("compares");
        assert!(!report.passed(), "{}", report.render());
        assert!(
            report.only_in_a.iter().any(|k| k.starts_with("reduction:")),
            "{:?}",
            report.only_in_a
        );
    }
}
