//! Structured errors for the scenario engine.
//!
//! Everything that used to travel as `Result<_, String>` through the
//! runner, registry and CLI now flows through [`ScenarioError`], which
//! carries *which cells* failed (coordinates, failure kind, retry
//! history) instead of a flattened prose blob. `diva-report` maps the
//! taxonomy onto its exit codes via [`ScenarioError::exit_code`].

use std::fmt;

/// How a supervised cell ultimately failed (after retries).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailKind {
    /// The cell's evaluation closure panicked on every attempt.
    Panicked,
    /// The cell evaluated but produced a non-finite (NaN/Inf) metric.
    Invalid,
    /// The cell exceeded the configured soft timeout (`--timeout-ms`).
    TimedOut,
    /// The cell itself evaluated fine, but a Normalize rule's baseline
    /// arm failed, so its derived metrics are uncomputable.
    DepFailed,
}

impl FailKind {
    /// Stable lowercase tag used in `diva-scenario/v1` error records.
    pub fn slug(&self) -> &'static str {
        match self {
            FailKind::Panicked => "panicked",
            FailKind::Invalid => "invalid",
            FailKind::TimedOut => "timed-out",
            FailKind::DepFailed => "dep-failed",
        }
    }

    /// Parses the tag written by [`FailKind::slug`].
    pub fn from_slug(s: &str) -> Option<Self> {
        match s {
            "panicked" => Some(FailKind::Panicked),
            "invalid" => Some(FailKind::Invalid),
            "timed-out" => Some(FailKind::TimedOut),
            "dep-failed" => Some(FailKind::DepFailed),
            _ => None,
        }
    }
}

impl fmt::Display for FailKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// One cell's terminal failure: where it sits in the grid, how it died,
/// and what every attempt said.
#[derive(Clone, Debug, PartialEq)]
pub struct CellFailure {
    /// The cell's grid coordinates as `(axis name, value label)` pairs,
    /// in axis order.
    pub coords: Vec<(String, String)>,
    /// Terminal classification.
    pub kind: FailKind,
    /// The last attempt's error message (panic payload, offending
    /// metric, or timeout description).
    pub error: String,
    /// Total attempts made (1 = no retries).
    pub attempts: u32,
    /// Per-attempt error messages, oldest first. Length equals
    /// `attempts` for cells that failed every attempt.
    pub history: Vec<String>,
}

impl CellFailure {
    /// The cell's stable key, `axis=label|axis=label` in axis order —
    /// the same key the journal and fault harness hash.
    pub fn key(&self) -> String {
        let parts: Vec<String> = self
            .coords
            .iter()
            .map(|(axis, label)| format!("{axis}={label}"))
            .collect();
        parts.join("|")
    }
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell [{}] {} after {} attempt{}: {}",
            self.key(),
            self.kind,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.error
        )
    }
}

/// The scenario engine's error taxonomy.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioError {
    /// No registered scenario matches the requested name.
    UnknownScenario {
        /// What the caller asked for.
        name: String,
        /// Registered labels, for the error message.
        available: Vec<String>,
    },
    /// A `RunOptions` field is malformed (bad filter, bad sweep spec,
    /// bad fault spec...).
    InvalidOptions(String),
    /// A `--set`/`--sweep` override was rejected by the design-space
    /// parameter registry.
    Config(String),
    /// The experiment definition itself is inconsistent (duplicate axis,
    /// Normalize rule naming an unknown axis or missing baseline...).
    Definition(String),
    /// One or more cells failed terminally. Without `--keep-going` this
    /// aborts the run; with it, the artifact is still written and this
    /// error reports the damage.
    CellsFailed {
        /// Every terminally-failed cell, in grid order.
        failures: Vec<CellFailure>,
        /// How many cells completed OK (they are in the journal, so a
        /// `--resume` run picks up from here).
        completed: usize,
    },
    /// The resume journal is unusable: fingerprint mismatch, malformed
    /// header, or conflicting records.
    Journal(String),
    /// Filesystem failure while reading or writing artifacts.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error description.
        message: String,
    },
    /// A `diva-scenario/v1` or perf JSON document failed to parse.
    Parse(String),
}

impl ScenarioError {
    /// The `diva-report` process exit code for this error: `2` for cell
    /// failures (partial results exist), `4` for journal problems
    /// (resume state needs attention), `1` for everything else.
    pub fn exit_code(&self) -> u8 {
        match self {
            ScenarioError::CellsFailed { .. } => 2,
            ScenarioError::Journal(_) => 4,
            _ => 1,
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::UnknownScenario { name, available } => {
                write!(
                    f,
                    "unknown scenario '{name}'; available: {}",
                    available.join(", ")
                )
            }
            ScenarioError::InvalidOptions(msg) => write!(f, "invalid options: {msg}"),
            ScenarioError::Config(msg) => write!(f, "configuration error: {msg}"),
            ScenarioError::Definition(msg) => write!(f, "experiment definition error: {msg}"),
            ScenarioError::CellsFailed {
                failures,
                completed,
            } => {
                writeln!(
                    f,
                    "{} cell{} failed ({completed} completed):",
                    failures.len(),
                    if failures.len() == 1 { "" } else { "s" }
                )?;
                for failure in failures {
                    writeln!(f, "  {failure}")?;
                    for (i, msg) in failure.history.iter().enumerate() {
                        writeln!(f, "    attempt {}: {msg}", i + 1)?;
                    }
                }
                write!(f, "completed cells are journaled; re-run with --resume")
            }
            ScenarioError::Journal(msg) => write!(f, "journal error: {msg}"),
            ScenarioError::Io { path, message } => write!(f, "io error on {path}: {message}"),
            ScenarioError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn failure() -> CellFailure {
        CellFailure {
            coords: vec![
                ("model".to_string(), "BERT".to_string()),
                ("point".to_string(), "base".to_string()),
            ],
            kind: FailKind::Panicked,
            error: "boom".to_string(),
            attempts: 2,
            history: vec!["boom once".to_string(), "boom".to_string()],
        }
    }

    #[test]
    fn cell_key_joins_axis_order() {
        assert_eq!(failure().key(), "model=BERT|point=base");
    }

    #[test]
    fn display_names_coordinates_and_history() {
        let err = ScenarioError::CellsFailed {
            failures: vec![failure()],
            completed: 7,
        };
        let text = err.to_string();
        assert!(text.contains("1 cell failed (7 completed)"));
        assert!(text.contains("cell [model=BERT|point=base] panicked after 2 attempts: boom"));
        assert!(text.contains("attempt 1: boom once"));
        assert!(text.contains("--resume"));
    }

    #[test]
    fn exit_codes_partition_the_taxonomy() {
        let cells = ScenarioError::CellsFailed {
            failures: vec![failure()],
            completed: 0,
        };
        assert_eq!(cells.exit_code(), 2);
        assert_eq!(ScenarioError::Journal("x".into()).exit_code(), 4);
        assert_eq!(ScenarioError::Parse("x".into()).exit_code(), 1);
        assert_eq!(
            ScenarioError::UnknownScenario {
                name: "x".into(),
                available: vec![]
            }
            .exit_code(),
            1
        );
    }

    #[test]
    fn fail_kind_slug_round_trips() {
        for kind in [
            FailKind::Panicked,
            FailKind::Invalid,
            FailKind::TimedOut,
            FailKind::DepFailed,
        ] {
            assert_eq!(FailKind::from_slug(kind.slug()), Some(kind));
        }
        assert_eq!(FailKind::from_slug("exploded"), None);
    }
}
