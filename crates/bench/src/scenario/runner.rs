//! Deterministic grid execution for [`Experiment`]s: filtering, parallel
//! evaluation over the shared keep-alive pool, derived metrics, and
//! declared reductions.
//!
//! Determinism: the grid is enumerated row-major in axis-declaration
//! order, evaluated with [`crate::run_parallel`] (which fixes the
//! task-to-slot assignment before execution starts), and every cell's
//! evaluation is a pure function of its coordinates — so results are
//! bit-identical for every worker-thread count. `scenario_determinism` in
//! `crates/bench/tests/scenario_tests.rs` pins this.

use std::sync::Arc;

use super::{
    norm_label, Axis, AxisValue, Cell, CellCtx, Experiment, Normalize, Payload, ReduceKind,
    Reduction, Rename,
};
use diva_arch::ConfigError;
use diva_core::{geomean, Accelerator};

/// Options steering one experiment run (the CLI's axis filters and
/// design-space knobs).
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Per-axis label allowlists: `(axis name, allowed labels)`. Labels are
    /// matched via [`norm_label`].
    pub filters: Vec<(String, Vec<String>)>,
    /// Replaces the `"batch"` axis values with these fixed sizes (the
    /// `--batch` flag — a replacement, not a restriction, since the default
    /// axis usually holds the symbolic paper policy).
    pub batch_override: Option<Vec<u64>>,
    /// `(parameter, value)` overrides applied to **every** accelerator arm
    /// of the scenario before running (the `--set key=value` flag).
    /// Parameter names resolve through the `diva_arch::params` registry;
    /// a typo errors with the list of registered names.
    pub set_overrides: Vec<(String, String)>,
    /// Ad-hoc config axes injected into the grid (the `--sweep key=v1,v2`
    /// flag): each entry becomes an [`Payload::Overrides`] axis named
    /// after the parameter, inserted right after the accelerator axis.
    pub sweeps: Vec<(String, Vec<String>)>,
}

impl RunOptions {
    /// Adds a filter for `axis`.
    pub fn filter(mut self, axis: &str, labels: &[&str]) -> Self {
        self.filters.push((
            axis.to_string(),
            labels.iter().map(|l| l.to_string()).collect(),
        ));
        self
    }

    /// Replaces the batch axis with fixed sizes.
    pub fn batches(mut self, batches: &[u64]) -> Self {
        self.batch_override = Some(batches.to_vec());
        self
    }

    /// Overrides a registered parameter on every accelerator arm.
    pub fn set(mut self, param: &str, value: &str) -> Self {
        self.set_overrides
            .push((param.to_string(), value.to_string()));
        self
    }

    /// Injects an ad-hoc config axis sweeping a registered parameter.
    pub fn sweep(mut self, param: &str, values: &[&str]) -> Self {
        self.sweeps.push((
            param.to_string(),
            values.iter().map(|v| v.to_string()).collect(),
        ));
        self
    }
}

/// The labels of one axis after filtering (visible values only).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AxisMeta {
    /// Axis name.
    pub name: String,
    /// Visible value labels, in axis order.
    pub labels: Vec<String>,
}

/// One visible result row: coordinates, metrics (declared + derived) and
/// string annotations.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultRow {
    /// `(axis name, value label)` coordinates in axis order.
    pub coords: Vec<(String, String)>,
    /// Numeric metrics in evaluation-then-derivation order.
    pub metrics: Vec<(String, f64)>,
    /// String annotations.
    pub notes: Vec<(String, String)>,
}

impl ResultRow {
    /// The label of axis `axis` in this row.
    pub fn coord(&self, axis: &str) -> Option<&str> {
        self.coords
            .iter()
            .find(|(a, _)| a == axis)
            .map(|(_, l)| l.as_str())
    }

    /// The value of metric `key`, if present.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// One computed summary value of a declared [`Reduction`].
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// The reduction's display label.
    pub label: String,
    /// The aggregated metric.
    pub metric: String,
    /// The aggregation function.
    pub kind: ReduceKind,
    /// `(axis, label)` pins identifying this group (empty when ungrouped).
    pub group: Vec<(String, String)>,
    /// The aggregated value.
    pub value: f64,
    /// How many cells contributed.
    pub count: usize,
    /// The paper's reference value, if declared.
    pub paper: Option<&'static str>,
}

/// A fully executed experiment, ready for rendering.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioResult {
    /// Registry name.
    pub name: String,
    /// Table title.
    pub title: String,
    /// Post-filter axis metadata (visible labels only).
    pub axes: Vec<AxisMeta>,
    /// Visible result rows in grid order.
    pub rows: Vec<ResultRow>,
    /// Computed summaries in declaration (then group) order.
    pub summaries: Vec<Summary>,
    /// Metrics the text renderer should show (empty = all).
    pub display_metrics: Vec<String>,
    /// Text-table pivot, forwarded from the experiment.
    pub pivot: Option<(String, String)>,
    /// Commentary lines.
    pub notes: Vec<String>,
    /// Names of the ratio metrics the experiment's [`Normalize`] rules
    /// derive. Serialized into the JSON document so `diva-report
    /// --compare` knows which metrics gate the regression exit code.
    pub derived_metrics: Vec<String>,
    /// The `--set` parameter overrides this run was produced under
    /// (empty for a baseline run). Serialized into the JSON document so
    /// an overridden artifact is distinguishable from a baseline one —
    /// `--compare` refuses to diff documents with different overrides.
    pub overrides: Vec<(String, String)>,
}

/// One axis after filtering: kept values plus per-value visibility.
struct KeptAxis<'a> {
    name: &'a str,
    values: Vec<AxisValue>,
    visible: Vec<bool>,
}

/// Applies the design-space knobs to a working copy of the experiment's
/// axes: `--set` rebuilds every accelerator arm with the overrides,
/// `--sweep` injects a config axis per swept parameter (right after the
/// accelerator-carrying axis, so the grid reads naturally).
fn effective_axes(exp: &Experiment, opts: &RunOptions) -> Result<Vec<Axis>, String> {
    let mut axes: Vec<Axis> = exp.axes.clone();
    if !opts.set_overrides.is_empty() {
        let mut rebuilt = 0usize;
        for axis in &mut axes {
            for value in &mut axis.values {
                if let Payload::Accel(accel) = &value.payload {
                    let new = accel
                        .with_overrides(&opts.set_overrides)
                        .map_err(|e| format!("--set on arm {:?}: {e}", value.label))?;
                    value.payload = Payload::Accel(Arc::new(new));
                    rebuilt += 1;
                }
            }
        }
        if rebuilt == 0 {
            return Err(format!(
                "scenario {:?} has no accelerator-carrying axis for --set to override",
                exp.name
            ));
        }
    }
    for (param, values) in &opts.sweeps {
        if !diva_arch::params::is_param(param) {
            return Err(ConfigError::UnknownParameter(param.clone()).to_string());
        }
        if values.is_empty() {
            return Err(format!("sweep over {param:?} needs at least one value"));
        }
        if axes.iter().any(|a| &a.name == param) {
            return Err(format!(
                "scenario {:?} already has an axis named {param:?}",
                exp.name
            ));
        }
        let Some(pos) = axes.iter().position(|a| {
            a.values
                .iter()
                .any(|v| matches!(v.payload, Payload::Accel(_)))
        }) else {
            return Err(format!(
                "scenario {:?} has no accelerator-carrying axis for --sweep {param}",
                exp.name
            ));
        };
        let axis = Axis::new(
            param.clone(),
            values
                .iter()
                .map(|v| AxisValue::overrides(v.clone(), &[(param.as_str(), v.as_str())])),
        );
        axes.insert(pos + 1, axis);
    }
    Ok(axes)
}

/// Applies filters and the batch override to the experiment's (effective)
/// axes, retaining filtered-out values that a [`Normalize`] baseline
/// needs (marked invisible).
fn keep_axes<'a>(
    exp: &Experiment,
    exp_axes: &'a [Axis],
    opts: &RunOptions,
) -> Result<Vec<KeptAxis<'a>>, String> {
    // A filter naming an axis the experiment doesn't have is an error, not
    // a no-op: silently ignoring it would return full unfiltered results
    // for a typo'd `--axis` name.
    for (name, _) in &opts.filters {
        if !exp_axes.iter().any(|a| &a.name == name) {
            return Err(format!(
                "scenario {:?} has no axis named {name:?}; axes: {}",
                exp.name,
                exp_axes
                    .iter()
                    .map(|a| a.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
    }
    if opts.batch_override.is_some() && !exp_axes.iter().any(|a| a.name == "batch") {
        return Err(format!(
            "scenario {:?} has no \"batch\" axis to override",
            exp.name
        ));
    }
    let mut kept = Vec::with_capacity(exp_axes.len());
    for axis in exp_axes {
        let mut values: Vec<AxisValue> = axis.values.clone();
        if axis.name == "batch" {
            if let Some(batches) = &opts.batch_override {
                values = batches.iter().map(|&b| AxisValue::batch(b)).collect();
            }
        }
        let filter = opts.filters.iter().find(|(name, _)| name == &axis.name);
        let mut visible: Vec<bool> = match filter {
            None => vec![true; values.len()],
            Some((_, raw_labels)) => {
                let wanted: Vec<String> = raw_labels.iter().map(|l| norm_label(l)).collect();
                let vis: Vec<bool> = values
                    .iter()
                    .map(|v| wanted.contains(&norm_label(&v.label)))
                    .collect();
                // Every requested label must match something, and at least
                // one value must survive.
                for (raw, w) in raw_labels.iter().zip(&wanted) {
                    if !values.iter().any(|v| &norm_label(&v.label) == w) {
                        return Err(format!(
                            "axis {:?} has no value matching {raw:?}; available: {}",
                            axis.name,
                            values
                                .iter()
                                .map(|v| v.label.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ));
                    }
                }
                vis
            }
        };
        if !visible.iter().any(|&v| v) {
            return Err(format!("axis {:?} filtered down to nothing", axis.name));
        }
        // Baseline arms referenced by derived-metric rules are evaluated
        // even when filtered out, so ratios survive aggressive filters.
        let needed: Vec<&String> = exp
            .derived
            .iter()
            .flat_map(|n| n.baseline.iter())
            .filter(|(a, _)| a == &axis.name)
            .map(|(_, label)| label)
            .collect();
        let keep_mask: Vec<bool> = values
            .iter()
            .zip(&visible)
            .map(|(v, &vis)| vis || needed.iter().any(|n| norm_label(n) == norm_label(&v.label)))
            .collect();
        let mut kept_values = Vec::new();
        let mut kept_visible = Vec::new();
        for ((v, keep), vis) in values.into_iter().zip(keep_mask).zip(visible.drain(..)) {
            if keep {
                kept_values.push(v);
                kept_visible.push(vis);
            }
        }
        kept.push(KeptAxis {
            name: &axis.name,
            values: kept_values,
            visible: kept_visible,
        });
    }
    Ok(kept)
}

/// Row-major enumeration of the kept grid: cell `i`'s coordinate along
/// axis `a` is `indices(i)[a]`.
fn grid_shape(axes: &[KeptAxis]) -> Vec<usize> {
    axes.iter().map(|a| a.values.len()).collect()
}

fn unravel(mut i: usize, shape: &[usize]) -> Vec<usize> {
    let mut idx = vec![0; shape.len()];
    for a in (0..shape.len()).rev() {
        idx[a] = i % shape[a];
        i /= shape[a];
    }
    idx
}

fn ravel(idx: &[usize], shape: &[usize]) -> usize {
    let mut flat = 0;
    for (a, &i) in idx.iter().enumerate() {
        flat = flat * shape[a] + i;
    }
    flat
}

/// Executes an experiment: filter → evaluate → derive → reduce.
///
/// # Errors
///
/// Returns a description when a filter names an unknown label or empties
/// an axis, or when a reduction/derivation references an unknown axis.
pub fn run_experiment(exp: &Experiment, opts: &RunOptions) -> Result<ScenarioResult, String> {
    let exp_axes = effective_axes(exp, opts)?;
    let axes = keep_axes(exp, &exp_axes, opts)?;
    for rule in &exp.derived {
        for (axis, _) in &rule.baseline {
            if !axes.iter().any(|a| a.name == axis) {
                return Err(format!("derive rule references unknown axis {axis:?}"));
            }
        }
    }
    for red in &exp.reductions {
        for axis in red.group_by.iter().chain(red.filter.iter().map(|(a, _)| a)) {
            if !axes.iter().any(|a| a.name == axis) {
                return Err(format!(
                    "reduction {:?} references unknown axis {axis:?}",
                    red.label
                ));
            }
        }
    }

    let shape = grid_shape(&axes);
    let n_cells: usize = shape.iter().product();

    // Config-axis materialization: when any axis carries
    // [`Payload::Overrides`] values, every distinct (accelerator arm ×
    // config coordinates) combination is built once — base config +
    // overrides, validated — and handed to the cells via
    // `CellCtx::accel_override`. Bad parameter names or out-of-range
    // values surface here as errors, never panics.
    let accel_axis = axes.iter().position(|a| {
        a.values
            .iter()
            .any(|v| matches!(v.payload, Payload::Accel(_)))
    });
    let cfg_axes: Vec<usize> = axes
        .iter()
        .enumerate()
        .filter(|(_, a)| {
            a.values
                .iter()
                .any(|v| matches!(v.payload, Payload::Overrides(_)))
        })
        .map(|(i, _)| i)
        .collect();
    let combo_key = |idx: &[usize], pa: usize| -> Vec<usize> {
        std::iter::once(idx[pa])
            .chain(cfg_axes.iter().map(|&a| idx[a]))
            .collect()
    };
    let mut materialized: Vec<(Vec<usize>, Arc<Accelerator>)> = Vec::new();
    if !cfg_axes.is_empty() {
        let pa = accel_axis.ok_or_else(|| {
            format!(
                "scenario {:?} has a config axis but no accelerator-carrying axis",
                exp.name
            )
        })?;
        for i in 0..n_cells {
            let idx = unravel(i, &shape);
            let key = combo_key(&idx, pa);
            if materialized.iter().any(|(k, _)| *k == key) {
                continue;
            }
            let Payload::Accel(base) = &axes[pa].values[idx[pa]].payload else {
                return Err(format!(
                    "axis {:?} mixes accelerator and non-accelerator values",
                    axes[pa].name
                ));
            };
            let mut overrides: Vec<(String, String)> = Vec::new();
            for &a in &cfg_axes {
                let Payload::Overrides(ovr) = &axes[a].values[idx[a]].payload else {
                    return Err(format!(
                        "config axis {:?} mixes override and non-override values",
                        axes[a].name
                    ));
                };
                overrides.extend(ovr.iter().cloned());
            }
            let accel = base
                .with_overrides(&overrides)
                .map_err(|e| format!("arm {:?}: {e}", axes[pa].values[idx[pa]].label))?;
            materialized.push((key, Arc::new(accel)));
        }
    }

    let contexts: Vec<CellCtx> = (0..n_cells)
        .map(|i| {
            let idx = unravel(i, &shape);
            let accel_override = accel_axis.filter(|_| !cfg_axes.is_empty()).and_then(|pa| {
                let key = combo_key(&idx, pa);
                materialized
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, a)| Arc::clone(a))
            });
            CellCtx {
                coords: axes
                    .iter()
                    .zip(&idx)
                    .map(|(a, &vi)| (a.name, &a.values[vi]))
                    .collect(),
                accel_override,
            }
        })
        .collect();

    // Evaluate the whole grid (visible and hidden baseline cells) on the
    // shared pool; `run_parallel` preserves input order.
    let eval = &exp.eval;
    let mut cells: Vec<Cell> = crate::run_parallel(contexts, |ctx: &CellCtx| eval(ctx));

    // Derived metrics: look up each cell's baseline arm and append ratios.
    for rule in &exp.derived {
        apply_normalize(rule, &axes, &shape, &mut cells)?;
    }

    let visible = |idx: &[usize]| -> bool { axes.iter().zip(idx).all(|(a, &vi)| a.visible[vi]) };

    let mut rows = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        let idx = unravel(i, &shape);
        if !visible(&idx) {
            continue;
        }
        rows.push(ResultRow {
            coords: axes
                .iter()
                .zip(&idx)
                .map(|(a, &vi)| (a.name.to_string(), a.values[vi].label.clone()))
                .collect(),
            metrics: cell.metrics.clone(),
            notes: cell.notes.clone(),
        });
    }

    // Ad-hoc `--sweep` axes join every pre-declared reduction's group_by
    // (exactly what the registered dse_* scenarios declare themselves):
    // pooling cells across swept configurations into one aggregate —
    // next to a paper reference valid only at the paper's fixed point —
    // would be misleading.
    let sweep_axes: Vec<&str> = opts
        .sweeps
        .iter()
        .map(|(param, _)| param.as_str())
        .collect();
    let mut summaries = Vec::new();
    for red in &exp.reductions {
        let mut red = red.clone();
        for axis in &sweep_axes {
            if !red.group_by.iter().any(|g| g == axis) {
                red.group_by.push(axis.to_string());
            }
        }
        summaries.extend(apply_reduction(&red, &rows));
    }

    Ok(ScenarioResult {
        name: exp.name.to_string(),
        title: exp.title.clone(),
        axes: axes
            .iter()
            .map(|a| AxisMeta {
                name: a.name.to_string(),
                labels: a
                    .values
                    .iter()
                    .zip(&a.visible)
                    .filter(|(_, &vis)| vis)
                    .map(|(v, _)| v.label.clone())
                    .collect(),
            })
            .collect(),
        rows,
        summaries,
        display_metrics: exp.display_metrics.clone(),
        pivot: exp
            .pivot
            .as_ref()
            .map(|p| (p.axis.clone(), p.metric.clone())),
        notes: {
            let mut notes = exp.notes.clone();
            if !opts.set_overrides.is_empty() {
                let pins: Vec<String> = opts
                    .set_overrides
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                notes.push(format!(
                    "(every accelerator arm rebuilt with --set {})",
                    pins.join(" ")
                ));
            }
            notes
        },
        derived_metrics: derived_names(exp),
        overrides: opts.set_overrides.clone(),
    })
}

/// The metric names the experiment's [`Normalize`] rules derive, deduped
/// in declaration order.
fn derived_names(exp: &Experiment) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for rule in &exp.derived {
        for metric in &rule.metrics {
            let name = rule.derived_name(metric);
            if !names.contains(&name) {
                names.push(name);
            }
        }
    }
    names
}

/// Applies one [`Normalize`] rule across the evaluated grid.
fn apply_normalize(
    rule: &Normalize,
    axes: &[KeptAxis],
    shape: &[usize],
    cells: &mut [Cell],
) -> Result<(), String> {
    // Resolve the pinned index on each baseline axis (by normalized label).
    let mut pins: Vec<(usize, usize)> = Vec::new(); // (axis position, value index)
    for (axis_name, label) in &rule.baseline {
        let a = axes
            .iter()
            .position(|a| a.name == axis_name)
            .expect("validated above");
        let Some(vi) = axes[a]
            .values
            .iter()
            .position(|v| norm_label(&v.label) == norm_label(label))
        else {
            // The baseline arm does not exist on this (possibly
            // batch-overridden) axis; skip the rule rather than fail, so
            // e.g. `--batch` replacements don't kill unrelated scenarios.
            return Ok(());
        };
        pins.push((a, vi));
    }
    if let (Rename::To(_), true) = (&rule.rename, rule.metrics.len() != 1) {
        return Err("Rename::To requires exactly one metric".to_string());
    }
    for i in 0..cells.len() {
        let mut base_idx = unravel(i, shape);
        for &(a, vi) in &pins {
            base_idx[a] = vi;
        }
        let base_flat = ravel(&base_idx, shape);
        let mut new_metrics = Vec::new();
        for metric in &rule.metrics {
            let denom_key = rule.denom_metric.as_deref().unwrap_or(metric.as_str());
            let (Some(num), Some(denom)) = (cells[i].get(metric), cells[base_flat].get(denom_key))
            else {
                continue;
            };
            if denom == 0.0 || num == 0.0 && rule.invert {
                continue;
            }
            let value = if rule.invert {
                denom / num
            } else {
                num / denom
            };
            new_metrics.push((rule.derived_name(metric), value));
        }
        cells[i].metrics.extend(new_metrics);
    }
    Ok(())
}

/// A reduction group's `(axis, label)` key.
type GroupKey = Vec<(String, String)>;

/// Applies one [`Reduction`] over the visible rows, producing one summary
/// per group (groups appear in first-encountered grid order).
fn apply_reduction(red: &Reduction, rows: &[ResultRow]) -> Vec<Summary> {
    let mut groups: Vec<(GroupKey, Vec<f64>)> = Vec::new();
    for row in rows {
        let matches = red.filter.iter().all(|(axis, label)| {
            row.coord(axis)
                .is_some_and(|l| norm_label(l) == norm_label(label))
        });
        if !matches {
            continue;
        }
        let Some(value) = row.get(&red.metric) else {
            continue;
        };
        let key: Vec<(String, String)> = red
            .group_by
            .iter()
            .filter_map(|axis| row.coord(axis).map(|l| (axis.clone(), l.to_string())))
            .collect();
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, values)) => values.push(value),
            None => groups.push((key, vec![value])),
        }
    }
    groups
        .into_iter()
        .map(|(group, values)| {
            let value = match red.kind {
                ReduceKind::Mean => values.iter().sum::<f64>() / values.len() as f64,
                ReduceKind::Geomean => geomean(&values),
                ReduceKind::Max => values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                ReduceKind::Min => values.iter().cloned().fold(f64::INFINITY, f64::min),
            };
            Summary {
                label: red.label.clone(),
                metric: red.metric.clone(),
                kind: red.kind,
                group,
                value,
                count: values.len(),
                paper: red.paper,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::super::Axis;
    use super::*;
    use std::sync::Arc;

    /// A tiny synthetic experiment: value = 10 * model-index + point-index.
    fn toy() -> Experiment {
        Experiment::new(
            "toy",
            "toy experiment",
            Arc::new(|ctx: &CellCtx| {
                let m: f64 = ctx
                    .label("model")
                    .strip_prefix('m')
                    .unwrap()
                    .parse()
                    .unwrap();
                let p: f64 = ctx
                    .label("point")
                    .strip_prefix('p')
                    .unwrap()
                    .parse()
                    .unwrap();
                Cell::new().metric("v", 10.0 * m + p + 1.0)
            }),
        )
        .axis(Axis::new(
            "model",
            (0..3).map(|i| AxisValue::label(format!("m{i}"))),
        ))
        .axis(Axis::new(
            "point",
            (0..2).map(|i| AxisValue::label(format!("p{i}"))),
        ))
        .derive(Normalize::speedup("v", &[("point", "p0")], "ratio"))
        .reduce(
            Reduction::new("mean ratio at p1", "ratio", ReduceKind::Mean)
                .filter(&[("point", "p1")]),
        )
    }

    #[test]
    fn grid_is_row_major_and_complete() {
        let res = run_experiment(&toy(), &RunOptions::default()).unwrap();
        assert_eq!(res.rows.len(), 6);
        assert_eq!(
            res.rows[0].coords,
            vec![
                ("model".to_string(), "m0".to_string()),
                ("point".to_string(), "p0".to_string()),
            ]
        );
        assert_eq!(res.rows[1].coord("point"), Some("p1"));
        assert_eq!(res.rows[5].get("v"), Some(22.0));
    }

    #[test]
    fn derived_ratio_uses_baseline_arm() {
        let res = run_experiment(&toy(), &RunOptions::default()).unwrap();
        // ratio at (m1, p1) = v(m1,p0)/v(m1,p1) = 11/12.
        let row = res
            .rows
            .iter()
            .find(|r| r.coord("model") == Some("m1") && r.coord("point") == Some("p1"))
            .unwrap();
        assert_eq!(row.get("ratio"), Some(11.0 / 12.0));
    }

    #[test]
    fn reduction_filters_and_counts() {
        let res = run_experiment(&toy(), &RunOptions::default()).unwrap();
        let s = &res.summaries[0];
        assert_eq!(s.count, 3);
        let expected = (1.0 / 2.0 + 11.0 / 12.0 + 21.0 / 22.0) / 3.0;
        assert!((s.value - expected).abs() < 1e-15);
    }

    #[test]
    fn hidden_baseline_survives_filters() {
        let opts = RunOptions::default().filter("point", &["p1"]);
        let res = run_experiment(&toy(), &opts).unwrap();
        // Only p1 rows are visible, but the p0 baseline was still evaluated.
        assert_eq!(res.rows.len(), 3);
        assert!(res.rows.iter().all(|r| r.coord("point") == Some("p1")));
        assert_eq!(res.rows[0].get("ratio"), Some(1.0 / 2.0));
        assert_eq!(res.axes[1].labels, vec!["p1".to_string()]);
    }

    #[test]
    fn unknown_filter_label_is_an_error() {
        let opts = RunOptions::default().filter("model", &["m0", "bogus"]);
        let err = run_experiment(&toy(), &opts).unwrap_err();
        assert!(err.contains("bogus"), "{err}");
        assert!(err.contains("available"), "{err}");
    }

    #[test]
    fn ravel_unravel_round_trip() {
        let shape = [3usize, 4, 2];
        for i in 0..24 {
            assert_eq!(ravel(&unravel(i, &shape), &shape), i);
        }
    }
}
