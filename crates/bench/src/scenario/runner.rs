//! Deterministic grid execution for [`Experiment`]s: filtering, parallel
//! evaluation over the shared keep-alive pool, per-cell supervision,
//! checkpoint/resume, derived metrics, and declared reductions.
//!
//! Determinism: the grid is enumerated row-major in axis-declaration
//! order, evaluated with [`crate::run_parallel`] (which fixes the
//! task-to-slot assignment before execution starts), and every cell's
//! evaluation is a pure function of its coordinates — so results are
//! bit-identical for every worker-thread count. `scenario_determinism` in
//! `crates/bench/tests/scenario_tests.rs` pins this.
//!
//! Fault tolerance: every cell runs under the [supervisor](super::supervisor) — panics and
//! non-finite metrics settle to typed failures instead of unwinding the
//! region, retries are bounded and sequential within the cell's own task
//! (thread-count stable), and with [`RunOptions::resume_dir`] set each
//! completed cell is journaled the moment it finishes so a killed run
//! resumes from its last complete record. Failures abort the run with
//! [`ScenarioError::CellsFailed`] unless [`RunOptions::keep_going`] is
//! set, in which case failed cells become explicit error rows
//! ([`RowStatus::Failed`]) in the artifact; reductions skip them and
//! report the skip count, and a Normalize rule whose baseline arm failed
//! marks its dependents failed rather than silently dropping ratios.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use super::error::{CellFailure, FailKind, ScenarioError};
use super::journal::{fingerprint_hex, Journal, JournalOutcome, JournalSpec};
use super::supervisor::{supervise, CellOutcome, SupervisorCfg};
use super::{
    norm_label, Axis, AxisValue, CellCtx, Experiment, Normalize, Payload, ReduceKind, Reduction,
    Rename,
};
use crate::faults::FaultPlan;
use diva_arch::ConfigError;
use diva_core::{geomean, Accelerator};

/// Options steering one experiment run (the CLI's axis filters,
/// design-space knobs, and fault-tolerance policy).
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Per-axis label allowlists: `(axis name, allowed labels)`. Labels are
    /// matched via [`norm_label`].
    pub filters: Vec<(String, Vec<String>)>,
    /// Replaces the `"batch"` axis values with these fixed sizes (the
    /// `--batch` flag — a replacement, not a restriction, since the default
    /// axis usually holds the symbolic paper policy).
    pub batch_override: Option<Vec<u64>>,
    /// `(parameter, value)` overrides applied to **every** accelerator arm
    /// of the scenario before running (the `--set key=value` flag).
    /// Parameter names resolve through the `diva_arch::params` registry;
    /// a typo errors with the list of registered names.
    pub set_overrides: Vec<(String, String)>,
    /// Ad-hoc config axes injected into the grid (the `--sweep key=v1,v2`
    /// flag): each entry becomes an [`Payload::Overrides`] axis named
    /// after the parameter, inserted right after the accelerator axis.
    pub sweeps: Vec<(String, Vec<String>)>,
    /// Record failed cells as explicit error rows instead of aborting
    /// (the `--keep-going` flag). The run still exits non-zero.
    pub keep_going: bool,
    /// Extra supervised attempts after a cell's first failure (the
    /// `--max-retries` flag; retries happen inline in the cell's own
    /// task, so they are deterministic across worker-thread counts).
    pub max_retries: u32,
    /// Soft per-cell wall-clock budget in milliseconds (the
    /// `--timeout-ms` flag). Wall-clock classification is inherently
    /// non-deterministic; leave `None` (the default) for byte-identical
    /// artifacts.
    pub cell_timeout_ms: Option<u64>,
    /// Deterministic fault injection (the `--inject` flag); `None` in
    /// production runs.
    pub faults: Option<FaultPlan>,
    /// Journal completed cells under this directory and reuse previous
    /// runs' completed cells (the `--resume` flag).
    pub resume_dir: Option<PathBuf>,
}

impl RunOptions {
    /// Adds a filter for `axis`.
    pub fn filter(mut self, axis: &str, labels: &[&str]) -> Self {
        self.filters.push((
            axis.to_string(),
            labels.iter().map(|l| l.to_string()).collect(),
        ));
        self
    }

    /// Replaces the batch axis with fixed sizes.
    pub fn batches(mut self, batches: &[u64]) -> Self {
        self.batch_override = Some(batches.to_vec());
        self
    }

    /// Overrides a registered parameter on every accelerator arm.
    pub fn set(mut self, param: &str, value: &str) -> Self {
        self.set_overrides
            .push((param.to_string(), value.to_string()));
        self
    }

    /// Injects an ad-hoc config axis sweeping a registered parameter.
    pub fn sweep(mut self, param: &str, values: &[&str]) -> Self {
        self.sweeps.push((
            param.to_string(),
            values.iter().map(|v| v.to_string()).collect(),
        ));
        self
    }

    /// Records failed cells as error rows instead of aborting.
    pub fn keep_going(mut self) -> Self {
        self.keep_going = true;
        self
    }

    /// Allows `n` extra supervised attempts per failing cell.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Sets the soft per-cell wall-clock budget.
    pub fn cell_timeout_ms(mut self, ms: u64) -> Self {
        self.cell_timeout_ms = Some(ms);
        self
    }

    /// Installs a deterministic fault-injection plan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Journals completed cells under `dir` and resumes from it.
    pub fn resume(mut self, dir: impl Into<PathBuf>) -> Self {
        self.resume_dir = Some(dir.into());
        self
    }
}

/// The labels of one axis after filtering (visible values only).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AxisMeta {
    /// Axis name.
    pub name: String,
    /// Visible value labels, in axis order.
    pub labels: Vec<String>,
}

/// Whether a result row holds real metrics or records a cell failure.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum RowStatus {
    /// The cell completed; the row's metrics are valid.
    #[default]
    Ok,
    /// The cell failed terminally (only present under
    /// [`RunOptions::keep_going`]); the row carries no metrics.
    Failed {
        /// Terminal classification.
        kind: FailKind,
        /// The last attempt's error message.
        error: String,
        /// Total supervised attempts made.
        attempts: u32,
    },
}

impl RowStatus {
    /// `true` for a completed row.
    pub fn is_ok(&self) -> bool {
        matches!(self, RowStatus::Ok)
    }
}

/// One visible result row: coordinates, metrics (declared + derived) and
/// string annotations — or, under `--keep-going`, an explicit error record
/// (see [`RowStatus`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResultRow {
    /// `(axis name, value label)` coordinates in axis order.
    pub coords: Vec<(String, String)>,
    /// Numeric metrics in evaluation-then-derivation order (empty for
    /// failed rows).
    pub metrics: Vec<(String, f64)>,
    /// String annotations (empty for failed rows).
    pub notes: Vec<(String, String)>,
    /// Completed or failed.
    pub status: RowStatus,
}

impl ResultRow {
    /// The label of axis `axis` in this row.
    pub fn coord(&self, axis: &str) -> Option<&str> {
        self.coords
            .iter()
            .find(|(a, _)| a == axis)
            .map(|(_, l)| l.as_str())
    }

    /// The value of metric `key`, if present.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }
}

/// One computed summary value of a declared [`Reduction`].
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// The reduction's display label.
    pub label: String,
    /// The aggregated metric.
    pub metric: String,
    /// The aggregation function.
    pub kind: ReduceKind,
    /// `(axis, label)` pins identifying this group (empty when ungrouped).
    pub group: Vec<(String, String)>,
    /// The aggregated value.
    pub value: f64,
    /// How many cells contributed.
    pub count: usize,
    /// How many matching rows were failed cells and therefore skipped
    /// (only ever non-zero under `--keep-going`).
    pub skipped: usize,
    /// The paper's reference value, if declared.
    pub paper: Option<&'static str>,
}

/// A fully executed experiment, ready for rendering.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioResult {
    /// Registry name.
    pub name: String,
    /// Table title.
    pub title: String,
    /// Post-filter axis metadata (visible labels only).
    pub axes: Vec<AxisMeta>,
    /// Visible result rows in grid order.
    pub rows: Vec<ResultRow>,
    /// Computed summaries in declaration (then group) order.
    pub summaries: Vec<Summary>,
    /// Metrics the text renderer should show (empty = all).
    pub display_metrics: Vec<String>,
    /// Text-table pivot, forwarded from the experiment.
    pub pivot: Option<(String, String)>,
    /// Commentary lines.
    pub notes: Vec<String>,
    /// Names of the ratio metrics the experiment's [`Normalize`] rules
    /// derive. Serialized into the JSON document so `diva-report
    /// --compare` knows which metrics gate the regression exit code.
    pub derived_metrics: Vec<String>,
    /// The `--set` parameter overrides this run was produced under
    /// (empty for a baseline run). Serialized into the JSON document so
    /// an overridden artifact is distinguishable from a baseline one —
    /// `--compare` refuses to diff documents with different overrides.
    pub overrides: Vec<(String, String)>,
    /// Every terminally failed cell (including hidden baseline arms), in
    /// grid order. Non-empty only under `--keep-going` — without it the
    /// run aborts with [`ScenarioError::CellsFailed`] instead.
    pub failures: Vec<CellFailure>,
}

/// One axis after filtering: kept values plus per-value visibility.
struct KeptAxis<'a> {
    name: &'a str,
    values: Vec<AxisValue>,
    visible: Vec<bool>,
}

/// Applies the design-space knobs to a working copy of the experiment's
/// axes: `--set` rebuilds every accelerator arm with the overrides,
/// `--sweep` injects a config axis per swept parameter (right after the
/// accelerator-carrying axis, so the grid reads naturally).
fn effective_axes(exp: &Experiment, opts: &RunOptions) -> Result<Vec<Axis>, ScenarioError> {
    let mut axes: Vec<Axis> = exp.axes.clone();
    if !opts.set_overrides.is_empty() {
        let mut rebuilt = 0usize;
        for axis in &mut axes {
            for value in &mut axis.values {
                if let Payload::Accel(accel) = &value.payload {
                    let new = accel.with_overrides(&opts.set_overrides).map_err(|e| {
                        ScenarioError::Config(format!("--set on arm {:?}: {e}", value.label))
                    })?;
                    value.payload = Payload::Accel(Arc::new(new));
                    rebuilt += 1;
                }
            }
        }
        if rebuilt == 0 {
            return Err(ScenarioError::InvalidOptions(format!(
                "scenario {:?} has no accelerator-carrying axis for --set to override",
                exp.name
            )));
        }
    }
    for (param, values) in &opts.sweeps {
        if !diva_arch::params::is_param(param) {
            return Err(ScenarioError::Config(
                ConfigError::UnknownParameter(param.clone()).to_string(),
            ));
        }
        if values.is_empty() {
            return Err(ScenarioError::InvalidOptions(format!(
                "sweep over {param:?} needs at least one value"
            )));
        }
        if axes.iter().any(|a| &a.name == param) {
            return Err(ScenarioError::InvalidOptions(format!(
                "scenario {:?} already has an axis named {param:?}",
                exp.name
            )));
        }
        let Some(pos) = axes.iter().position(|a| {
            a.values
                .iter()
                .any(|v| matches!(v.payload, Payload::Accel(_)))
        }) else {
            return Err(ScenarioError::InvalidOptions(format!(
                "scenario {:?} has no accelerator-carrying axis for --sweep {param}",
                exp.name
            )));
        };
        let axis = Axis::new(
            param.clone(),
            values
                .iter()
                .map(|v| AxisValue::overrides(v.clone(), &[(param.as_str(), v.as_str())])),
        );
        axes.insert(pos + 1, axis);
    }
    Ok(axes)
}

/// Applies filters and the batch override to the experiment's (effective)
/// axes, retaining filtered-out values that a [`Normalize`] baseline
/// needs (marked invisible).
fn keep_axes<'a>(
    exp: &Experiment,
    exp_axes: &'a [Axis],
    opts: &RunOptions,
) -> Result<Vec<KeptAxis<'a>>, ScenarioError> {
    let invalid = |msg: String| ScenarioError::InvalidOptions(msg);
    // A filter naming an axis the experiment doesn't have is an error, not
    // a no-op: silently ignoring it would return full unfiltered results
    // for a typo'd `--axis` name.
    for (name, _) in &opts.filters {
        if !exp_axes.iter().any(|a| &a.name == name) {
            return Err(invalid(format!(
                "scenario {:?} has no axis named {name:?}; axes: {}",
                exp.name,
                exp_axes
                    .iter()
                    .map(|a| a.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )));
        }
    }
    if opts.batch_override.is_some() && !exp_axes.iter().any(|a| a.name == "batch") {
        return Err(invalid(format!(
            "scenario {:?} has no \"batch\" axis to override",
            exp.name
        )));
    }
    let mut kept = Vec::with_capacity(exp_axes.len());
    for axis in exp_axes {
        let mut values: Vec<AxisValue> = axis.values.clone();
        if axis.name == "batch" {
            if let Some(batches) = &opts.batch_override {
                values = batches.iter().map(|&b| AxisValue::batch(b)).collect();
            }
        }
        let filter = opts.filters.iter().find(|(name, _)| name == &axis.name);
        let mut visible: Vec<bool> = match filter {
            None => vec![true; values.len()],
            Some((_, raw_labels)) => {
                let wanted: Vec<String> = raw_labels.iter().map(|l| norm_label(l)).collect();
                let vis: Vec<bool> = values
                    .iter()
                    .map(|v| wanted.contains(&norm_label(&v.label)))
                    .collect();
                // Every requested label must match something, and at least
                // one value must survive.
                for (raw, w) in raw_labels.iter().zip(&wanted) {
                    if !values.iter().any(|v| &norm_label(&v.label) == w) {
                        return Err(invalid(format!(
                            "axis {:?} has no value matching {raw:?}; available: {}",
                            axis.name,
                            values
                                .iter()
                                .map(|v| v.label.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        )));
                    }
                }
                vis
            }
        };
        if !visible.iter().any(|&v| v) {
            return Err(invalid(format!(
                "axis {:?} filtered down to nothing",
                axis.name
            )));
        }
        // Baseline arms referenced by derived-metric rules are evaluated
        // even when filtered out, so ratios survive aggressive filters.
        let needed: Vec<&String> = exp
            .derived
            .iter()
            .flat_map(|n| n.baseline.iter())
            .filter(|(a, _)| a == &axis.name)
            .map(|(_, label)| label)
            .collect();
        let keep_mask: Vec<bool> = values
            .iter()
            .zip(&visible)
            .map(|(v, &vis)| vis || needed.iter().any(|n| norm_label(n) == norm_label(&v.label)))
            .collect();
        let mut kept_values = Vec::new();
        let mut kept_visible = Vec::new();
        for ((v, keep), vis) in values.into_iter().zip(keep_mask).zip(visible.drain(..)) {
            if keep {
                kept_values.push(v);
                kept_visible.push(vis);
            }
        }
        kept.push(KeptAxis {
            name: &axis.name,
            values: kept_values,
            visible: kept_visible,
        });
    }
    Ok(kept)
}

/// Row-major enumeration of the kept grid: cell `i`'s coordinate along
/// axis `a` is `indices(i)[a]`.
fn grid_shape(axes: &[KeptAxis]) -> Vec<usize> {
    axes.iter().map(|a| a.values.len()).collect()
}

fn unravel(mut i: usize, shape: &[usize]) -> Vec<usize> {
    let mut idx = vec![0; shape.len()];
    for a in (0..shape.len()).rev() {
        idx[a] = i % shape[a];
        i /= shape[a];
    }
    idx
}

fn ravel(idx: &[usize], shape: &[usize]) -> usize {
    let mut flat = 0;
    for (a, &i) in idx.iter().enumerate() {
        flat = flat * shape[a] + i;
    }
    flat
}

/// The stable identity of cell `i` in the kept grid:
/// `axis=label|axis=label` in axis order — hashed by the fault harness,
/// keyed on by the journal, reported in [`CellFailure`]s.
fn cell_key(axes: &[KeptAxis], shape: &[usize], i: usize) -> String {
    let idx = unravel(i, shape);
    let parts: Vec<String> = axes
        .iter()
        .zip(&idx)
        .map(|(a, &vi)| format!("{}={}", a.name, a.values[vi].label))
        .collect();
    parts.join("|")
}

/// The `(axis, label)` coordinates of cell `i` in the kept grid.
fn cell_coords(axes: &[KeptAxis], shape: &[usize], i: usize) -> Vec<(String, String)> {
    let idx = unravel(i, shape);
    axes.iter()
        .zip(&idx)
        .map(|(a, &vi)| (a.name.to_string(), a.values[vi].label.clone()))
        .collect()
}

/// The parts hashed into the resume journal's fingerprint: everything
/// that shapes the kept grid or the derived metrics. Two runs share a
/// journal only if these (plus the crate version) are identical — i.e.
/// `--resume` must be combined with the same filters, batch override,
/// sweeps and `--set` overrides as the run that wrote the journal.
fn fingerprint_parts(exp: &Experiment, axes: &[KeptAxis], opts: &RunOptions) -> Vec<String> {
    let mut parts = vec![exp.name.to_string(), exp.title.clone()];
    for a in axes {
        let labels: Vec<&str> = a.values.iter().map(|v| v.label.as_str()).collect();
        parts.push(format!("axis:{}={}", a.name, labels.join(",")));
    }
    parts.push(format!("derived:{}", derived_names(exp).join(",")));
    parts.push(format!("overrides:{}", join_overrides(&opts.set_overrides)));
    parts
}

fn join_overrides(overrides: &[(String, String)]) -> String {
    overrides
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Executes an experiment: filter → supervise/evaluate (reusing journaled
/// cells) → derive → reduce.
///
/// # Errors
///
/// [`ScenarioError::InvalidOptions`] when a filter names an unknown label
/// or empties an axis; [`ScenarioError::Definition`] when a
/// reduction/derivation references an unknown axis;
/// [`ScenarioError::CellsFailed`] when cells fail terminally and
/// [`RunOptions::keep_going`] is off; [`ScenarioError::Journal`] /
/// [`ScenarioError::Io`] for resume-store problems.
pub fn run_experiment(
    exp: &Experiment,
    opts: &RunOptions,
) -> Result<ScenarioResult, ScenarioError> {
    let exp_axes = effective_axes(exp, opts)?;
    let axes = keep_axes(exp, &exp_axes, opts)?;
    for rule in &exp.derived {
        for (axis, _) in &rule.baseline {
            if !axes.iter().any(|a| a.name == axis) {
                return Err(ScenarioError::Definition(format!(
                    "derive rule references unknown axis {axis:?}"
                )));
            }
        }
    }
    for red in &exp.reductions {
        for axis in red.group_by.iter().chain(red.filter.iter().map(|(a, _)| a)) {
            if !axes.iter().any(|a| a.name == axis) {
                return Err(ScenarioError::Definition(format!(
                    "reduction {:?} references unknown axis {axis:?}",
                    red.label
                )));
            }
        }
    }

    let shape = grid_shape(&axes);
    let n_cells: usize = shape.iter().product();

    // Config-axis materialization: when any axis carries
    // [`Payload::Overrides`] values, every distinct (accelerator arm ×
    // config coordinates) combination is built once — base config +
    // overrides, validated — and handed to the cells via
    // `CellCtx::accel_override`. Bad parameter names or out-of-range
    // values surface here as errors, never panics.
    let accel_axis = axes.iter().position(|a| {
        a.values
            .iter()
            .any(|v| matches!(v.payload, Payload::Accel(_)))
    });
    let cfg_axes: Vec<usize> = axes
        .iter()
        .enumerate()
        .filter(|(_, a)| {
            a.values
                .iter()
                .any(|v| matches!(v.payload, Payload::Overrides(_)))
        })
        .map(|(i, _)| i)
        .collect();
    let combo_key = |idx: &[usize], pa: usize| -> Vec<usize> {
        std::iter::once(idx[pa])
            .chain(cfg_axes.iter().map(|&a| idx[a]))
            .collect()
    };
    let mut materialized: Vec<(Vec<usize>, Arc<Accelerator>)> = Vec::new();
    if !cfg_axes.is_empty() {
        let pa = accel_axis.ok_or_else(|| {
            ScenarioError::Definition(format!(
                "scenario {:?} has a config axis but no accelerator-carrying axis",
                exp.name
            ))
        })?;
        for i in 0..n_cells {
            let idx = unravel(i, &shape);
            let key = combo_key(&idx, pa);
            if materialized.iter().any(|(k, _)| *k == key) {
                continue;
            }
            let Payload::Accel(base) = &axes[pa].values[idx[pa]].payload else {
                // A mixed axis (fig17's GPU-label + accelerator arms):
                // non-accelerator arms take no overrides — the swept knob
                // only varies the hardware arms, and those cells keep
                // `accel_override == None`.
                continue;
            };
            let mut overrides: Vec<(String, String)> = Vec::new();
            for &a in &cfg_axes {
                let Payload::Overrides(ovr) = &axes[a].values[idx[a]].payload else {
                    return Err(ScenarioError::Definition(format!(
                        "config axis {:?} mixes override and non-override values",
                        axes[a].name
                    )));
                };
                overrides.extend(ovr.iter().cloned());
            }
            let accel = base.with_overrides(&overrides).map_err(|e| {
                ScenarioError::Config(format!("arm {:?}: {e}", axes[pa].values[idx[pa]].label))
            })?;
            materialized.push((key, Arc::new(accel)));
        }
    }

    let keys: Vec<String> = (0..n_cells).map(|i| cell_key(&axes, &shape, i)).collect();

    // Open the resume journal (when requested) and pull in completed
    // cells from previous runs; previously *failed* cells re-run.
    let (journal, cached) = match &opts.resume_dir {
        Some(dir) => {
            let spec = JournalSpec {
                scenario: exp.name.to_string(),
                fingerprint: fingerprint_hex(&fingerprint_parts(exp, &axes, opts)),
                overrides: join_overrides(&opts.set_overrides),
            };
            let (journal, cached) = Journal::open(dir, &spec)?;
            (Some(journal), cached)
        }
        None => (None, HashMap::new()),
    };
    let mut outcomes: Vec<Option<CellOutcome>> = (0..n_cells)
        .map(|i| match cached.get(&keys[i]) {
            Some(JournalOutcome::Ok(cell)) => Some(CellOutcome::Ok(cell.clone())),
            _ => None,
        })
        .collect();

    let todo: Vec<(usize, CellCtx)> = (0..n_cells)
        .filter(|&i| outcomes[i].is_none())
        .map(|i| {
            let idx = unravel(i, &shape);
            let accel_override = accel_axis.filter(|_| !cfg_axes.is_empty()).and_then(|pa| {
                let key = combo_key(&idx, pa);
                materialized
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, a)| Arc::clone(a))
            });
            let ctx = CellCtx {
                coords: axes
                    .iter()
                    .zip(&idx)
                    .map(|(a, &vi)| (a.name, &a.values[vi]))
                    .collect(),
                accel_override,
            };
            (i, ctx)
        })
        .collect();

    // Evaluate the missing cells (visible and hidden baseline cells) on
    // the shared pool, each under the supervisor; `run_parallel`
    // preserves input order, and each completed cell is journaled (and
    // flushed) the moment it settles so a killed run loses at most the
    // in-flight cells.
    let sup_cfg = SupervisorCfg {
        max_retries: opts.max_retries,
        timeout_ms: opts.cell_timeout_ms,
        faults: opts.faults.clone(),
    };
    let eval = &exp.eval;
    let fresh: Vec<(usize, CellOutcome)> =
        crate::run_parallel(todo, |(i, ctx): &(usize, CellCtx)| {
            let key = &keys[*i];
            let outcome = supervise(&sup_cfg, key, || eval(ctx));
            if let Some(journal) = &journal {
                match &outcome {
                    CellOutcome::Ok(cell) => journal.append_ok(key, cell),
                    CellOutcome::Failed {
                        kind,
                        error,
                        attempts,
                        ..
                    } => journal.append_failure(key, *kind, error, *attempts),
                }
            }
            (*i, outcome.clone())
        });
    if let Some(err) = journal.as_ref().and_then(Journal::take_error) {
        return Err(err);
    }
    for (i, outcome) in fresh {
        outcomes[i] = Some(outcome);
    }
    let mut cells: Vec<CellOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every cell is cached or freshly evaluated"))
        .collect();

    // Derived metrics: look up each cell's baseline arm and append
    // ratios; a failed baseline marks its dependents failed.
    for rule in &exp.derived {
        apply_normalize(rule, &axes, &shape, &keys, &mut cells)?;
    }

    // Collect terminal failures (hidden baseline arms included) in grid
    // order; without --keep-going they abort the run. The journal already
    // holds every completed cell, so a --resume re-run picks up from here
    // either way.
    let failures: Vec<CellFailure> = cells
        .iter()
        .enumerate()
        .filter_map(|(i, outcome)| match outcome {
            CellOutcome::Ok(_) => None,
            CellOutcome::Failed {
                kind,
                error,
                attempts,
                history,
            } => Some(CellFailure {
                coords: cell_coords(&axes, &shape, i),
                kind: *kind,
                error: error.clone(),
                attempts: *attempts,
                history: history.clone(),
            }),
        })
        .collect();
    if !failures.is_empty() && !opts.keep_going {
        let completed = cells
            .iter()
            .filter(|o| matches!(o, CellOutcome::Ok(_)))
            .count();
        return Err(ScenarioError::CellsFailed {
            failures,
            completed,
        });
    }

    let visible = |idx: &[usize]| -> bool { axes.iter().zip(idx).all(|(a, &vi)| a.visible[vi]) };

    let mut rows = Vec::new();
    for (i, outcome) in cells.iter().enumerate() {
        let idx = unravel(i, &shape);
        if !visible(&idx) {
            continue;
        }
        let coords = cell_coords(&axes, &shape, i);
        rows.push(match outcome {
            CellOutcome::Ok(cell) => ResultRow {
                coords,
                metrics: cell.metrics.clone(),
                notes: cell.notes.clone(),
                status: RowStatus::Ok,
            },
            CellOutcome::Failed {
                kind,
                error,
                attempts,
                ..
            } => ResultRow {
                coords,
                metrics: Vec::new(),
                notes: Vec::new(),
                status: RowStatus::Failed {
                    kind: *kind,
                    error: error.clone(),
                    attempts: *attempts,
                },
            },
        });
    }

    // Ad-hoc `--sweep` axes join every pre-declared reduction's group_by
    // (exactly what the registered dse_* scenarios declare themselves):
    // pooling cells across swept configurations into one aggregate —
    // next to a paper reference valid only at the paper's fixed point —
    // would be misleading.
    let sweep_axes: Vec<&str> = opts
        .sweeps
        .iter()
        .map(|(param, _)| param.as_str())
        .collect();
    let mut summaries = Vec::new();
    for red in &exp.reductions {
        let mut red = red.clone();
        for axis in &sweep_axes {
            if !red.group_by.iter().any(|g| g == axis) {
                red.group_by.push(axis.to_string());
            }
        }
        summaries.extend(apply_reduction(&red, &rows));
    }

    Ok(ScenarioResult {
        name: exp.name.to_string(),
        title: exp.title.clone(),
        axes: axes
            .iter()
            .map(|a| AxisMeta {
                name: a.name.to_string(),
                labels: a
                    .values
                    .iter()
                    .zip(&a.visible)
                    .filter(|(_, &vis)| vis)
                    .map(|(v, _)| v.label.clone())
                    .collect(),
            })
            .collect(),
        rows,
        summaries,
        display_metrics: exp.display_metrics.clone(),
        pivot: exp
            .pivot
            .as_ref()
            .map(|p| (p.axis.clone(), p.metric.clone())),
        notes: {
            let mut notes = exp.notes.clone();
            if !opts.set_overrides.is_empty() {
                let pins: Vec<String> = opts
                    .set_overrides
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                notes.push(format!(
                    "(every accelerator arm rebuilt with --set {})",
                    pins.join(" ")
                ));
            }
            notes
        },
        derived_metrics: derived_names(exp),
        overrides: opts.set_overrides.clone(),
        failures,
    })
}

/// The metric names the experiment's [`Normalize`] rules derive, deduped
/// in declaration order.
fn derived_names(exp: &Experiment) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for rule in &exp.derived {
        for metric in &rule.metrics {
            let name = rule.derived_name(metric);
            if !names.contains(&name) {
                names.push(name);
            }
        }
    }
    names
}

/// Applies one [`Normalize`] rule across the supervised grid. Cells whose
/// baseline arm failed become [`FailKind::DepFailed`] (their raw metrics
/// are dropped — a row that *looks* complete but has silently-missing
/// ratios would be worse than an explicit error record).
fn apply_normalize(
    rule: &Normalize,
    axes: &[KeptAxis],
    shape: &[usize],
    keys: &[String],
    cells: &mut [CellOutcome],
) -> Result<(), ScenarioError> {
    // Resolve the pinned index on each baseline axis (by normalized label).
    let mut pins: Vec<(usize, usize)> = Vec::new(); // (axis position, value index)
    for (axis_name, label) in &rule.baseline {
        let a = axes
            .iter()
            .position(|a| a.name == axis_name)
            .ok_or_else(|| {
                ScenarioError::Definition(format!(
                    "derive rule references unknown axis {axis_name:?}"
                ))
            })?;
        let Some(vi) = axes[a]
            .values
            .iter()
            .position(|v| norm_label(&v.label) == norm_label(label))
        else {
            // The baseline arm does not exist on this (possibly
            // batch-overridden) axis; skip the rule rather than fail, so
            // e.g. `--batch` replacements don't kill unrelated scenarios.
            return Ok(());
        };
        pins.push((a, vi));
    }
    if let (Rename::To(_), true) = (&rule.rename, rule.metrics.len() != 1) {
        return Err(ScenarioError::Definition(
            "Rename::To requires exactly one metric".to_string(),
        ));
    }
    let base_flat_of = |i: usize| -> usize {
        let mut base_idx = unravel(i, shape);
        for &(a, vi) in &pins {
            base_idx[a] = vi;
        }
        ravel(&base_idx, shape)
    };
    // Pass 1: a completed cell whose baseline arm failed is itself failed
    // for this rule's derived metrics — mark it, naming the baseline.
    let mut dep_failed: Vec<(usize, String)> = Vec::new();
    for i in 0..cells.len() {
        if !matches!(cells[i], CellOutcome::Ok(_)) {
            continue;
        }
        let base_flat = base_flat_of(i);
        if let CellOutcome::Failed { kind, error, .. } = &cells[base_flat] {
            dep_failed.push((
                i,
                format!("baseline arm [{}] {kind}: {error}", keys[base_flat]),
            ));
        }
    }
    for (i, error) in dep_failed {
        cells[i] = CellOutcome::Failed {
            kind: FailKind::DepFailed,
            error: error.clone(),
            attempts: 1,
            history: vec![error],
        };
    }
    // Pass 2: append the derived ratios for cells whose baseline is fine.
    for i in 0..cells.len() {
        let base_flat = base_flat_of(i);
        let mut new_metrics = Vec::new();
        {
            let CellOutcome::Ok(cell) = &cells[i] else {
                continue;
            };
            let CellOutcome::Ok(base) = &cells[base_flat] else {
                continue;
            };
            for metric in &rule.metrics {
                let denom_key = rule.denom_metric.as_deref().unwrap_or(metric.as_str());
                let (Some(num), Some(denom)) = (cell.get(metric), base.get(denom_key)) else {
                    continue;
                };
                if denom == 0.0 || num == 0.0 && rule.invert {
                    continue;
                }
                let value = if rule.invert {
                    denom / num
                } else {
                    num / denom
                };
                new_metrics.push((rule.derived_name(metric), value));
            }
        }
        if let CellOutcome::Ok(cell) = &mut cells[i] {
            cell.metrics.extend(new_metrics);
        }
    }
    Ok(())
}

/// A reduction group's `(axis, label)` key.
type GroupKey = Vec<(String, String)>;

/// Applies one [`Reduction`] over the visible rows, producing one summary
/// per group (groups appear in first-encountered grid order). Failed rows
/// are skipped and counted in [`Summary::skipped`]; a group whose every
/// matching row failed produces no summary (its damage is visible in the
/// error records instead).
fn apply_reduction(red: &Reduction, rows: &[ResultRow]) -> Vec<Summary> {
    let mut groups: Vec<(GroupKey, Vec<f64>, usize)> = Vec::new();
    for row in rows {
        let matches = red.filter.iter().all(|(axis, label)| {
            row.coord(axis)
                .is_some_and(|l| norm_label(l) == norm_label(label))
        });
        if !matches {
            continue;
        }
        let key: Vec<(String, String)> = red
            .group_by
            .iter()
            .filter_map(|axis| row.coord(axis).map(|l| (axis.clone(), l.to_string())))
            .collect();
        if !row.status.is_ok() {
            match groups.iter_mut().find(|(k, _, _)| *k == key) {
                Some((_, _, skipped)) => *skipped += 1,
                None => groups.push((key, Vec::new(), 1)),
            }
            continue;
        }
        let Some(value) = row.get(&red.metric) else {
            continue;
        };
        match groups.iter_mut().find(|(k, _, _)| *k == key) {
            Some((_, values, _)) => values.push(value),
            None => groups.push((key, vec![value], 0)),
        }
    }
    groups
        .into_iter()
        .filter(|(_, values, _)| !values.is_empty())
        .map(|(group, values, skipped)| {
            let value = match red.kind {
                ReduceKind::Mean => values.iter().sum::<f64>() / values.len() as f64,
                ReduceKind::Geomean => geomean(&values),
                ReduceKind::Max => values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                ReduceKind::Min => values.iter().cloned().fold(f64::INFINITY, f64::min),
            };
            Summary {
                label: red.label.clone(),
                metric: red.metric.clone(),
                kind: red.kind,
                group,
                value,
                count: values.len(),
                skipped,
                paper: red.paper,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::super::{Axis, Cell};
    use super::*;
    use crate::faults::{FaultKind, FaultPlan};
    use std::sync::Arc;

    /// A tiny synthetic experiment: value = 10 * model-index + point-index.
    fn toy() -> Experiment {
        Experiment::new(
            "toy",
            "toy experiment",
            Arc::new(|ctx: &CellCtx| {
                let m: f64 = ctx
                    .label("model")
                    .strip_prefix('m')
                    .unwrap()
                    .parse()
                    .unwrap();
                let p: f64 = ctx
                    .label("point")
                    .strip_prefix('p')
                    .unwrap()
                    .parse()
                    .unwrap();
                Cell::new().metric("v", 10.0 * m + p + 1.0)
            }),
        )
        .axis(Axis::new(
            "model",
            (0..3).map(|i| AxisValue::label(format!("m{i}"))),
        ))
        .axis(Axis::new(
            "point",
            (0..2).map(|i| AxisValue::label(format!("p{i}"))),
        ))
        .derive(Normalize::speedup("v", &[("point", "p0")], "ratio"))
        .reduce(
            Reduction::new("mean ratio at p1", "ratio", ReduceKind::Mean)
                .filter(&[("point", "p1")]),
        )
    }

    #[test]
    fn grid_is_row_major_and_complete() {
        let res = run_experiment(&toy(), &RunOptions::default()).unwrap();
        assert_eq!(res.rows.len(), 6);
        assert_eq!(
            res.rows[0].coords,
            vec![
                ("model".to_string(), "m0".to_string()),
                ("point".to_string(), "p0".to_string()),
            ]
        );
        assert_eq!(res.rows[1].coord("point"), Some("p1"));
        assert_eq!(res.rows[5].get("v"), Some(22.0));
        assert!(res.rows.iter().all(|r| r.status.is_ok()));
        assert!(res.failures.is_empty());
    }

    #[test]
    fn derived_ratio_uses_baseline_arm() {
        let res = run_experiment(&toy(), &RunOptions::default()).unwrap();
        // ratio at (m1, p1) = v(m1,p0)/v(m1,p1) = 11/12.
        let row = res
            .rows
            .iter()
            .find(|r| r.coord("model") == Some("m1") && r.coord("point") == Some("p1"))
            .unwrap();
        assert_eq!(row.get("ratio"), Some(11.0 / 12.0));
    }

    #[test]
    fn reduction_filters_and_counts() {
        let res = run_experiment(&toy(), &RunOptions::default()).unwrap();
        let s = &res.summaries[0];
        assert_eq!(s.count, 3);
        assert_eq!(s.skipped, 0);
        let expected = (1.0 / 2.0 + 11.0 / 12.0 + 21.0 / 22.0) / 3.0;
        assert!((s.value - expected).abs() < 1e-15);
    }

    #[test]
    fn hidden_baseline_survives_filters() {
        let opts = RunOptions::default().filter("point", &["p1"]);
        let res = run_experiment(&toy(), &opts).unwrap();
        // Only p1 rows are visible, but the p0 baseline was still evaluated.
        assert_eq!(res.rows.len(), 3);
        assert!(res.rows.iter().all(|r| r.coord("point") == Some("p1")));
        assert_eq!(res.rows[0].get("ratio"), Some(1.0 / 2.0));
        assert_eq!(res.axes[1].labels, vec!["p1".to_string()]);
    }

    #[test]
    fn unknown_filter_label_is_an_error() {
        let opts = RunOptions::default().filter("model", &["m0", "bogus"]);
        let err = run_experiment(&toy(), &opts).unwrap_err().to_string();
        assert!(err.contains("bogus"), "{err}");
        assert!(err.contains("available"), "{err}");
    }

    #[test]
    fn cell_failure_aborts_with_coordinates_unless_keep_going() {
        // Panic on every cell, deterministically (sticky so retries can't
        // mask it).
        let opts = RunOptions::default()
            .filter("model", &["m1"])
            .faults(FaultPlan::single(FaultKind::Panic, 1.0, 0).sticky());
        let err = run_experiment(&toy(), &opts).unwrap_err();
        let ScenarioError::CellsFailed { failures, .. } = &err else {
            panic!("expected CellsFailed, got {err}");
        };
        // m1 is filtered in; p0 baseline cells are hidden but supervised
        // too — every cell was injected, so all kept cells fail.
        assert!(!failures.is_empty());
        assert!(failures[0].key().contains("model=m1"), "{}", failures[0]);
        assert_eq!(err.exit_code(), 2);

        // keep_going turns the same failures into explicit error rows.
        let opts = RunOptions::default()
            .filter("model", &["m1"])
            .faults(FaultPlan::single(FaultKind::Panic, 1.0, 0).sticky())
            .keep_going();
        let res = run_experiment(&toy(), &opts).unwrap();
        assert_eq!(res.rows.len(), 2);
        assert!(res.rows.iter().all(|r| !r.status.is_ok()));
        assert_eq!(res.failures.len(), 2);
        assert!(res.summaries.is_empty(), "all-failed groups emit nothing");
    }

    #[test]
    fn failed_baseline_marks_dependents_dep_failed() {
        // Fail only the (m0, p0) baseline cell (a targeted eval, not the
        // hash-based harness): its p1 dependent must be DepFailed even
        // though its own eval succeeded.
        let exp = Experiment::new(
            "toy_dep",
            "dep failure",
            Arc::new(|ctx: &CellCtx| {
                if ctx.label("model") == "m0" && ctx.label("point") == "p0" {
                    panic!("baseline down");
                }
                Cell::new().metric("v", 2.0)
            }),
        )
        .axis(Axis::new(
            "model",
            (0..2).map(|i| AxisValue::label(format!("m{i}"))),
        ))
        .axis(Axis::new(
            "point",
            (0..2).map(|i| AxisValue::label(format!("p{i}"))),
        ))
        .derive(Normalize::speedup("v", &[("point", "p0")], "ratio"))
        .reduce(Reduction::new("mean ratio", "ratio", ReduceKind::Mean).filter(&[("point", "p1")]));
        let res = run_experiment(&exp, &RunOptions::default().keep_going()).unwrap();
        let dep = res
            .rows
            .iter()
            .find(|r| r.coord("model") == Some("m0") && r.coord("point") == Some("p1"))
            .unwrap();
        let RowStatus::Failed { kind, error, .. } = &dep.status else {
            panic!("dependent of a failed baseline must be failed");
        };
        assert_eq!(*kind, FailKind::DepFailed);
        assert!(error.contains("model=m0|point=p0"), "{error}");
        assert!(dep.metrics.is_empty(), "raw metrics must be dropped");
        // The m1 half of the grid is untouched and still reduces, with
        // the dep-failed row counted as skipped.
        let ok = res
            .rows
            .iter()
            .find(|r| r.coord("model") == Some("m1") && r.coord("point") == Some("p1"))
            .unwrap();
        assert_eq!(ok.get("ratio"), Some(1.0));
        let s = &res.summaries[0];
        assert_eq!(s.count, 1);
        assert_eq!(s.skipped, 1);
        // Both the panicked baseline and its dep-failed dependent are in
        // the failure list.
        assert_eq!(res.failures.len(), 2);
    }

    #[test]
    fn retries_recover_nonsticky_injected_faults_byte_identically() {
        let clean = run_experiment(&toy(), &RunOptions::default()).unwrap();
        let opts = RunOptions::default()
            .faults(FaultPlan::single(FaultKind::Panic, 1.0, 3))
            .max_retries(1);
        let recovered = run_experiment(&toy(), &opts).unwrap();
        assert_eq!(clean, recovered);
    }

    #[test]
    fn ravel_unravel_round_trip() {
        let shape = [3usize, 4, 2];
        for i in 0..24 {
            assert_eq!(ravel(&unravel(i, &shape), &shape), i);
        }
    }
}
