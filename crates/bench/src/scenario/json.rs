//! The `diva-scenario/v1` JSON schema: serialization of a
//! [`ScenarioResult`] and a matching parser.
//!
//! The document is deliberately **flat**, following the
//! `diva-bench-perf/v1` conventions of [`crate::perf`] (no serde in the
//! approved dependency set):
//!
//! ```json
//! {
//!   "schema": "diva-scenario/v1",
//!   "scenario": "fig13",
//!   "title": "Figure 13: ...",
//!   "axes": [
//!     {"name": "model", "values": "VGG-16|ResNet-50"},
//!     {"name": "point", "values": "WS|DiVa"}
//!   ],
//!   "reductions": [
//!     {"name": "DiVa speedup vs WS", "metric": "speedup", "kind": "geomean",
//!      "group": "", "filter": "point=DiVa", "paper": "avg 3.6x", "value": 3.4,
//!      "count": 9}
//!   ],
//!   "records": [
//!     {"name": "fig13", "model": "VGG-16", "point": "WS", "batch": "64",
//!      "seconds": 0.0123, "speedup": 1.0}
//!   ]
//! }
//! ```
//!
//! Every array element is a flat object of string and numeric values, so
//! [`crate::perf::parse_perf_json`]'s record scanner applies verbatim to
//! the `records` array; axis value lists are `|`-joined into one string.
//! Non-finite metrics serialize as `null` and are dropped on parse.
//!
//! Failure records (`--keep-going`): a failed cell serializes with
//! `"status"`, `"error"` and `"attempts"` string tags and **no metrics**;
//! the document gains a top-level `"failed": N` count. Clean runs emit
//! neither — a document from a fully-successful run is byte-identical to
//! one from before the fault-tolerance layer, which is what makes the
//! `--resume` byte-identity guarantee testable against fresh runs.

use std::fmt::Write as _;

use super::runner::{RowStatus, ScenarioResult, Summary};
use crate::perf::{self, PerfRecord};

/// The schema identifier emitted by [`to_json`].
pub const SCHEMA: &str = "diva-scenario/v1";

/// Serializes a result to the `diva-scenario/v1` document.
pub fn to_json(result: &ScenarioResult) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": {},", perf::json_string(SCHEMA));
    let _ = writeln!(out, "  \"scenario\": {},", perf::json_string(&result.name));
    let _ = writeln!(out, "  \"title\": {},", perf::json_string(&result.title));
    let _ = writeln!(
        out,
        "  \"derived\": {},",
        perf::json_string(&result.derived_metrics.join("|"))
    );
    let _ = writeln!(
        out,
        "  \"overrides\": {},",
        perf::json_string(&join_pins(&result.overrides))
    );
    if !result.failures.is_empty() {
        let _ = writeln!(out, "  \"failed\": {},", result.failures.len());
    }
    out.push_str("  \"axes\": [\n");
    for (i, axis) in result.axes.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": {}, \"values\": {}}}",
            perf::json_string(&axis.name),
            perf::json_string(&axis.labels.join("|"))
        );
        out.push_str(if i + 1 < result.axes.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n  \"reductions\": [\n");
    for (i, s) in result.summaries.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(out, "\"name\": {}", perf::json_string(&s.label));
        let _ = write!(out, ", \"metric\": {}", perf::json_string(&s.metric));
        let _ = write!(out, ", \"kind\": {}", perf::json_string(s.kind.slug()));
        let _ = write!(
            out,
            ", \"group\": {}",
            perf::json_string(&join_pins(&s.group))
        );
        if let Some(paper) = s.paper {
            let _ = write!(out, ", \"paper\": {}", perf::json_string(paper));
        }
        if s.value.is_finite() {
            let _ = write!(out, ", \"value\": {}", s.value);
        } else {
            out.push_str(", \"value\": null");
        }
        let _ = write!(out, ", \"count\": {}", s.count);
        if s.skipped > 0 {
            let _ = write!(out, ", \"skipped\": {}", s.skipped);
        }
        out.push('}');
        out.push_str(if i + 1 < result.summaries.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n  \"records\": [\n");
    for (i, row) in result.rows.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(out, "\"name\": {}", perf::json_string(&result.name));
        for (axis, label) in &row.coords {
            let _ = write!(
                out,
                ", {}: {}",
                perf::json_string(axis),
                perf::json_string(label)
            );
        }
        if let RowStatus::Failed {
            kind,
            error,
            attempts,
        } = &row.status
        {
            let _ = write!(out, ", \"status\": {}", perf::json_string(kind.slug()));
            let _ = write!(out, ", \"error\": {}", perf::json_string(error));
            let _ = write!(
                out,
                ", \"attempts\": {}",
                perf::json_string(&attempts.to_string())
            );
        }
        for (key, value) in &row.notes {
            let _ = write!(
                out,
                ", {}: {}",
                perf::json_string(key),
                perf::json_string(value)
            );
        }
        for (key, value) in &row.metrics {
            if value.is_finite() {
                let _ = write!(out, ", {}: {}", perf::json_string(key), value);
            } else {
                let _ = write!(out, ", {}: null", perf::json_string(key));
            }
        }
        out.push('}');
        out.push_str(if i + 1 < result.rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// A parsed `diva-scenario/v1` document.
#[derive(Clone, Debug)]
pub struct ParsedScenario {
    /// The schema identifier (must be [`SCHEMA`]).
    pub schema: String,
    /// The scenario's registry name.
    pub scenario: String,
    /// The table title.
    pub title: String,
    /// Names of the scenario's ratio-normalized (derived) metrics — the
    /// metrics `diva-report --compare` gates its exit code on. Empty for
    /// documents predating the field or scenarios without derived rules.
    pub derived: Vec<String>,
    /// The `--set` overrides the document was produced under, in the
    /// flat `key=value,key=value` form (empty for a baseline run).
    pub overrides: String,
    /// Parsed axes: `(name, labels)`.
    pub axes: Vec<(String, Vec<String>)>,
    /// Reduction summaries as flat records (`name` = label; the value is
    /// in the `"value"` metric, contributing cells in `"count"`).
    pub reductions: Vec<PerfRecord>,
    /// Result rows as flat records (`name` = scenario, axis/note tags,
    /// numeric metrics).
    pub records: Vec<PerfRecord>,
}

/// Parses a document produced by [`to_json`].
///
/// # Errors
///
/// Returns a description of the first malformed construct, including a
/// schema mismatch.
pub fn parse_scenario_json(text: &str) -> Result<ParsedScenario, String> {
    let schema = top_level_string(text, "schema")?;
    if schema != SCHEMA {
        return Err(format!("unexpected schema {schema:?} (want {SCHEMA:?})"));
    }
    let scenario = top_level_string(text, "scenario")?;
    let title = top_level_string(text, "title")?;
    // Optional (documents from before the design-space layer lack it).
    let derived: Vec<String> = top_level_string(text, "derived")
        .map(|s| {
            s.split('|')
                .filter(|p| !p.is_empty())
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    // Optional like "derived": absent in pre-design-space documents.
    let overrides = top_level_string(text, "overrides").unwrap_or_default();
    let axes: Vec<(String, Vec<String>)> = flat_objects(text, "axes")?
        .into_iter()
        .map(|r| {
            let name = r
                .tag_value("name")
                .map(str::to_string)
                // The scanner maps the "name" key onto PerfRecord::name.
                .unwrap_or_else(|| r.name.clone());
            let values = r
                .tag_value("values")
                .map(|v| v.split('|').map(str::to_string).collect())
                .unwrap_or_default();
            (name, values)
        })
        .collect();
    let reductions = flat_objects(text, "reductions")?;
    let records = flat_objects(text, "records")?;
    // Duplicate cell coordinates are corruption (e.g. a concatenated or
    // double-written document), not something later consumers should
    // silently last-write-win on.
    let axis_names: Vec<&str> = axes.iter().map(|(name, _)| name.as_str()).collect();
    let mut seen_keys: Vec<String> = Vec::new();
    for record in &records {
        let key: Vec<String> = axis_names
            .iter()
            .filter_map(|a| record.tag_value(a).map(|l| format!("{a}={l}")))
            .collect();
        if key.is_empty() {
            continue;
        }
        let key = key.join("|");
        if seen_keys.contains(&key) {
            return Err(format!("duplicate cell coordinates [{key}] in records"));
        }
        seen_keys.push(key);
    }
    Ok(ParsedScenario {
        schema,
        scenario,
        title,
        derived,
        overrides,
        axes,
        reductions,
        records,
    })
}

/// Joins `(axis, label)` pins into the flat `axis=label,axis=label` form.
fn join_pins(pins: &[(String, String)]) -> String {
    pins.iter()
        .map(|(a, l)| format!("{a}={l}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Formats a [`Summary`]'s group for display/JSON (public for the report
/// binary's self-check).
pub fn summary_group(summary: &Summary) -> String {
    join_pins(&summary.group)
}

/// Extracts the first top-level `"key": "value"` string.
fn top_level_string(text: &str, key: &str) -> Result<String, String> {
    let pat = format!("\"{key}\"");
    let at = text
        .find(&pat)
        .ok_or_else(|| format!("missing {key:?} key"))?;
    let rest = text[at + pat.len()..]
        .trim_start()
        .strip_prefix(':')
        .ok_or_else(|| format!("expected ':' after {key:?}"))?
        .trim_start();
    let (value, _) = perf::parse_json_string(rest)?;
    Ok(value)
}

/// Parses the array under `key` as a sequence of flat objects.
fn flat_objects(text: &str, key: &str) -> Result<Vec<PerfRecord>, String> {
    let pat = format!("\"{key}\"");
    let at = text
        .find(&pat)
        .ok_or_else(|| format!("missing {key:?} array"))?;
    let open = text[at..]
        .find('[')
        .ok_or_else(|| format!("missing '[' after {key:?}"))?
        + at;
    let mut rest = text[open + 1..].trim_start();
    let mut out = Vec::new();
    loop {
        if rest.starts_with(']') {
            return Ok(out);
        }
        let obj_open = rest
            .find('{')
            .ok_or_else(|| format!("expected object or ']' in {key:?} array"))?;
        // Arrays of *flat* objects only: the next '}' closes the object.
        let obj_close = rest[obj_open..]
            .find('}')
            .ok_or_else(|| format!("unterminated object in {key:?} array"))?
            + obj_open;
        out.push(parse_flat(&rest[obj_open + 1..obj_close])?);
        rest = rest[obj_close + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
}

/// Parses one flat object body into a [`PerfRecord`], tolerating a missing
/// `name` key (axis objects use `"name"` for the axis name, which the
/// perf scanner maps onto [`PerfRecord::name`]).
fn parse_flat(body: &str) -> Result<PerfRecord, String> {
    // Reuse the perf record parser but relax its name requirement by
    // injecting a placeholder when absent.
    match perf::parse_record(body) {
        Ok(r) => Ok(r),
        Err(e) if e.contains("without a name") => {
            perf::parse_record(&format!("\"name\": \"-\", {body}"))
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::super::runner::{AxisMeta, ResultRow, ScenarioResult, Summary};
    use super::super::ReduceKind;
    use super::*;

    fn sample() -> ScenarioResult {
        ScenarioResult {
            name: "toy".into(),
            title: "Toy \"scenario\"".into(),
            axes: vec![
                AxisMeta {
                    name: "model".into(),
                    labels: vec!["VGG-16".into(), "ResNet-50".into()],
                },
                AxisMeta {
                    name: "point".into(),
                    labels: vec!["WS".into(), "DiVa".into()],
                },
            ],
            rows: vec![ResultRow {
                coords: vec![
                    ("model".into(), "VGG-16".into()),
                    ("point".into(), "WS".into()),
                ],
                metrics: vec![("seconds".into(), 0.125), ("bad".into(), f64::NAN)],
                notes: vec![("bound".into(), "memory".into())],
                status: RowStatus::Ok,
            }],
            summaries: vec![Summary {
                label: "mean seconds".into(),
                metric: "seconds".into(),
                kind: ReduceKind::Mean,
                group: vec![("point".into(), "DiVa".into())],
                value: 0.125,
                count: 1,
                skipped: 0,
                paper: Some("0.1"),
            }],
            display_metrics: Vec::new(),
            pivot: None,
            notes: Vec::new(),
            derived_metrics: vec!["speedup".into()],
            overrides: vec![("sram_mib".into(), "8".into())],
            failures: Vec::new(),
        }
    }

    #[test]
    fn round_trips_through_parser() {
        let doc = to_json(&sample());
        let parsed = parse_scenario_json(&doc).expect("parse");
        assert_eq!(parsed.schema, SCHEMA);
        assert_eq!(parsed.scenario, "toy");
        assert_eq!(parsed.title, "Toy \"scenario\"");
        assert_eq!(parsed.derived, vec!["speedup".to_string()]);
        assert_eq!(parsed.overrides, "sram_mib=8");
        assert_eq!(parsed.axes.len(), 2);
        assert_eq!(parsed.axes[0].0, "model");
        assert_eq!(parsed.axes[0].1, vec!["VGG-16", "ResNet-50"]);
        assert_eq!(parsed.records.len(), 1);
        assert_eq!(parsed.records[0].tag_value("model"), Some("VGG-16"));
        assert_eq!(parsed.records[0].tag_value("bound"), Some("memory"));
        assert_eq!(parsed.records[0].metric_value("seconds"), Some(0.125));
        assert_eq!(parsed.records[0].metric_value("bad"), None); // NaN → null
        assert_eq!(parsed.reductions.len(), 1);
        assert_eq!(parsed.reductions[0].name, "mean seconds");
        assert_eq!(parsed.reductions[0].tag_value("group"), Some("point=DiVa"));
        assert_eq!(parsed.reductions[0].metric_value("value"), Some(0.125));
        assert_eq!(parsed.reductions[0].metric_value("count"), Some(1.0));
    }

    #[test]
    fn records_array_is_perf_record_compatible() {
        let doc = to_json(&sample());
        let records = crate::perf::parse_perf_json(&doc).expect("perf-compatible");
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name, "toy");
        assert_eq!(records[0].metric_value("seconds"), Some(0.125));
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let doc = to_json(&sample()).replace(SCHEMA, "other/v9");
        assert!(parse_scenario_json(&doc).is_err());
    }

    #[test]
    fn balanced_braces() {
        let doc = to_json(&sample());
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn clean_run_emits_no_failure_fields() {
        let doc = to_json(&sample());
        assert!(!doc.contains("\"failed\""));
        assert!(!doc.contains("\"status\""));
        assert!(!doc.contains("\"skipped\""));
    }

    #[test]
    fn failed_rows_serialize_as_error_records() {
        use super::super::error::{CellFailure, FailKind};
        let mut result = sample();
        result.rows.push(ResultRow {
            coords: vec![
                ("model".into(), "VGG-16".into()),
                ("point".into(), "DiVa".into()),
            ],
            metrics: Vec::new(),
            notes: Vec::new(),
            status: RowStatus::Failed {
                kind: FailKind::Panicked,
                error: "index out of \"bounds\"".into(),
                attempts: 2,
            },
        });
        result.failures.push(CellFailure {
            coords: result.rows[1].coords.clone(),
            kind: FailKind::Panicked,
            error: "index out of \"bounds\"".into(),
            attempts: 2,
            history: vec!["first".into(), "index out of \"bounds\"".into()],
        });
        result.summaries[0].skipped = 1;
        let doc = to_json(&result);
        assert!(doc.contains("\"failed\": 1,"), "{doc}");
        assert!(doc.contains("\"skipped\": 1"), "{doc}");
        let parsed = parse_scenario_json(&doc).expect("parse");
        let failed = &parsed.records[1];
        assert_eq!(failed.tag_value("status"), Some("panicked"));
        assert_eq!(failed.tag_value("error"), Some("index out of \"bounds\""));
        assert_eq!(failed.tag_value("attempts"), Some("2"));
        assert!(failed.metrics.is_empty());
    }

    #[test]
    fn duplicate_cell_coordinates_are_rejected() {
        let mut result = sample();
        let dup = result.rows[0].clone();
        result.rows.push(dup);
        let err = parse_scenario_json(&to_json(&result)).unwrap_err();
        assert!(err.contains("duplicate cell coordinates"), "{err}");
        assert!(err.contains("model=VGG-16|point=WS"), "{err}");
    }
}
