//! The scenario registry: every paper figure, table and ablation under a
//! stable name, plus the convenience entry points the legacy figure
//! binaries shim onto.

use super::defs::{ablations, accounting, dse, explore, figures, sensitivity, tables};
use super::error::ScenarioError;
use super::render::print_result;
use super::runner::{run_experiment, RunOptions, ScenarioResult};
use super::Experiment;

/// One registry entry: a stable name, a one-line summary, and the builder
/// producing the scenario's [`Experiment`].
#[derive(Clone, Copy)]
pub struct ScenarioInfo {
    /// Stable scenario name (the `diva-report` CLI argument).
    pub name: &'static str,
    /// One-line summary shown by `diva-report --list`.
    pub summary: &'static str,
    /// Builds the experiment.
    pub build: fn() -> Experiment,
}

/// All registered scenarios, in the paper's presentation order.
pub const REGISTRY: &[ScenarioInfo] = &[
    ScenarioInfo {
        name: "maxbatch",
        summary: "Section III-A: max mini-batch per model and algorithm under 16 GB HBM",
        build: tables::maxbatch,
    },
    ScenarioInfo {
        name: "fig04",
        summary: "Figure 4: training-memory breakdown per algorithm, normalized to SGD",
        build: figures::fig04,
    },
    ScenarioInfo {
        name: "fig05",
        summary: "Figure 5: WS-baseline training-time breakdown per algorithm",
        build: figures::fig05,
    },
    ScenarioInfo {
        name: "fig06",
        summary: "Figure 6: representative GEMM (M, K, N) per training phase",
        build: figures::fig06,
    },
    ScenarioInfo {
        name: "fig07",
        summary: "Figure 7: WS-baseline FLOPS utilization per GEMM class",
        build: figures::fig07,
    },
    ScenarioInfo {
        name: "roofline",
        summary: "Section III-C: roofline placement of DP-SGD(R)'s GEMM classes",
        build: tables::roofline_analysis,
    },
    ScenarioInfo {
        name: "table1",
        summary: "Table I: SRAM bandwidth requirements per dataflow",
        build: tables::table1,
    },
    ScenarioInfo {
        name: "table2",
        summary: "Table II: the DiVa architecture configuration",
        build: tables::table2,
    },
    ScenarioInfo {
        name: "fig13",
        summary: "Figure 13: end-to-end speedup vs the WS systolic baseline",
        build: figures::fig13,
    },
    ScenarioInfo {
        name: "fig14",
        summary: "Figure 14: DP-SGD(R) latency breakdown per design point",
        build: figures::fig14,
    },
    ScenarioInfo {
        name: "fig15",
        summary: "Figure 15: FLOPS-utilization improvement per GEMM class vs WS",
        build: figures::fig15,
    },
    ScenarioInfo {
        name: "fig16",
        summary: "Figure 16: chip-wide step energy normalized to the WS baseline",
        build: figures::fig16,
    },
    ScenarioInfo {
        name: "fig17",
        summary: "Figure 17: DiVa vs V100/A100 on the per-example-gradient bottleneck",
        build: figures::fig17,
    },
    ScenarioInfo {
        name: "table3",
        summary: "Table III: engine power/area and effective DP-SGD(R) throughput",
        build: tables::table3,
    },
    ScenarioInfo {
        name: "ppu_traffic",
        summary: "Section IV-C/VI-A: the PPU's post-processing traffic reduction",
        build: tables::ppu_traffic,
    },
    ScenarioInfo {
        name: "sensitivity_image",
        summary: "Section VI-C: DiVa's edge as image area grows (five CNNs)",
        build: sensitivity::sensitivity_image,
    },
    ScenarioInfo {
        name: "sensitivity_seq",
        summary: "Section VI-C: DiVa's edge as sequence length grows (BERT/LSTM)",
        build: sensitivity::sensitivity_seq,
    },
    ScenarioInfo {
        name: "dse_pe_scale",
        summary: "DSE: DiVa-vs-WS speedup as the PE array scales 32x32..256x256",
        build: dse::dse_pe_scale,
    },
    ScenarioInfo {
        name: "dse_drain_rate",
        summary: "DSE: drain-rate R sweep (rows/cycle) on both design points",
        build: dse::dse_drain_rate,
    },
    ScenarioInfo {
        name: "dse_sram",
        summary: "DSE: SRAM capacity sweep through the parameter registry",
        build: dse::dse_sram,
    },
    ScenarioInfo {
        name: "dse_bandwidth",
        summary: "DSE: DRAM bandwidth sweep (GB/s) on both design points",
        build: dse::dse_bandwidth,
    },
    ScenarioInfo {
        name: "dse_frequency",
        summary: "DSE: clock sweep under the V-prop-f DVFS energy model (perf + energy)",
        build: dse::dse_frequency,
    },
    ScenarioInfo {
        name: "explore_frontier",
        summary: "Explorer: small fixed-seed Pareto search per strategy (regression gate)",
        build: explore::explore_frontier,
    },
    ScenarioInfo {
        name: "ablation_drain_overlap",
        summary: "Ablation: shadow-accumulator drain/compute overlap on DiVa",
        build: ablations::ablation_drain_overlap,
    },
    ScenarioInfo {
        name: "ablation_sram",
        summary: "Ablation: SRAM capacity sweep on WS and DiVa",
        build: ablations::ablation_sram,
    },
    ScenarioInfo {
        name: "ablation_vanilla_dpsgd",
        summary: "Ablation: DiVa's win under vanilla DP-SGD vs DP-SGD(R)",
        build: ablations::ablation_vanilla_dpsgd,
    },
    ScenarioInfo {
        name: "training_run_cost",
        summary: "Capstone: hours / watt-hours / epsilon of a full private run",
        build: tables::training_run_cost,
    },
    ScenarioInfo {
        name: "dp_accounting",
        summary: "DP accounting: epsilon per accountant (rdp/pld), q, sigma, steps",
        build: accounting::dp_accounting,
    },
];

/// Looks up a scenario by (case-insensitively normalized) name.
pub fn find(name: &str) -> Option<&'static ScenarioInfo> {
    let wanted = super::norm_label(name);
    REGISTRY
        .iter()
        .find(|s| super::norm_label(s.name) == wanted)
}

/// All registered scenario names, in registry order.
pub fn list() -> Vec<&'static str> {
    REGISTRY.iter().map(|s| s.name).collect()
}

/// Builds and runs a registered scenario with explicit options.
///
/// # Errors
///
/// [`ScenarioError::UnknownScenario`] when `name` is not registered;
/// otherwise whatever [`run_experiment`] reports (invalid options, failed
/// cells, journal problems...).
pub fn run_with(name: &str, opts: &RunOptions) -> Result<ScenarioResult, ScenarioError> {
    let info = find(name).ok_or_else(|| ScenarioError::UnknownScenario {
        name: name.to_string(),
        available: list().iter().map(|s| s.to_string()).collect(),
    })?;
    run_experiment(&(info.build)(), opts)
}

/// Runs a registered scenario with default options and prints its text
/// table, summaries and notes — the entry point the legacy figure
/// binaries shim onto.
///
/// # Panics
///
/// Panics if `name` is not registered (a build error, not a user error:
/// every shim names a registry constant).
pub fn run(name: &str) {
    let result = run_with(name, &RunOptions::default())
        .unwrap_or_else(|e| panic!("scenario {name:?} failed: {e}"));
    print_result(&result);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let mut names = list();
        assert_eq!(
            names.len(),
            28,
            "expected 21 paper artifacts + 5 dse scenarios + dp_accounting + explore_frontier"
        );
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 28);
        assert!(find("dp_accounting").is_some());
        assert!(find("dse_frequency").is_some());
        assert!(find("explore_frontier").is_some());
        assert!(find("fig13").is_some());
        assert!(find("FIG13").is_some(), "lookup is case-insensitive");
        assert!(find("dse_drain_rate").is_some());
        assert!(find("nope").is_none());
        // The acceptance bar: at least four registered dse_* scenarios.
        assert!(names.iter().filter(|n| n.starts_with("dse_")).count() >= 4);
    }

    #[test]
    fn every_registered_experiment_builds_with_nonempty_axes() {
        for info in REGISTRY {
            let exp = (info.build)();
            assert_eq!(exp.name, info.name, "experiment/registry name mismatch");
            assert!(!exp.axes.is_empty(), "{} has no axes", info.name);
            for axis in &exp.axes {
                assert!(
                    !axis.values.is_empty(),
                    "{}: axis {} is empty",
                    info.name,
                    axis.name
                );
            }
        }
    }
}
