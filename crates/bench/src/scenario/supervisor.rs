//! The per-cell supervisor: evaluates one grid cell under
//! `catch_unwind`, classifies the outcome, and applies the bounded
//! deterministic retry policy.
//!
//! The supervisor runs *inside* the parallel region's worker closure, so
//! a panicking cell never unwinds the region (contrast
//! `diva_tensor::pool`'s region-wide re-raise): each cell settles to a
//! typed [`CellOutcome`]. Retries are sequential within the cell's own
//! task — which worker thread hosts the cell can never change how many
//! attempts it gets or what they observe — so the supervised grid stays
//! bit-stable across worker-thread counts, failures included.
//!
//! Classification order for one attempt: a panic wins (there is no cell
//! to inspect), then the soft timeout (an over-budget cell's metrics are
//! suspect even if finite), then non-finite metric values. A successful
//! attempt returns the cell *without* any attempt metadata: a cell that
//! failed once and then succeeded (or was resumed) is indistinguishable
//! in the artifact from one that succeeded immediately — the byte-
//! identical resume guarantee depends on this.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use super::error::FailKind;
use super::Cell;
use crate::faults::{FaultKind, FaultPlan, DELAY_MILLIS};
use diva_tensor::parallel::panic_message;

/// How one supervised cell settled.
#[derive(Clone, Debug, PartialEq)]
pub enum CellOutcome {
    /// The cell evaluated to finite metrics (possibly after retries —
    /// deliberately not recorded here; see the module docs).
    Ok(Cell),
    /// Every attempt failed.
    Failed {
        /// The last attempt's classification.
        kind: FailKind,
        /// The last attempt's error message.
        error: String,
        /// Total attempts made (`max_retries + 1`).
        attempts: u32,
        /// Per-attempt error messages, oldest first.
        history: Vec<String>,
    },
}

/// The supervisor's knobs, extracted from `RunOptions` by the runner.
#[derive(Clone, Debug, Default)]
pub struct SupervisorCfg {
    /// Extra attempts after the first failure (`--max-retries`).
    pub max_retries: u32,
    /// Soft per-cell wall-clock budget in milliseconds (`--timeout-ms`).
    /// Checked after the attempt returns — cells are never interrupted
    /// mid-flight, so an over-budget cell costs its own runtime, no more.
    /// `None` disables the check (the default: wall-clock classification
    /// is inherently non-deterministic, so byte-identical workflows leave
    /// it off).
    pub timeout_ms: Option<u64>,
    /// Deterministic fault injection (`--inject`); `None` in production.
    pub faults: Option<FaultPlan>,
}

/// Supervises one cell: inject → evaluate under `catch_unwind` →
/// classify → retry up to the configured bound.
pub fn supervise<F>(cfg: &SupervisorCfg, key: &str, eval: F) -> CellOutcome
where
    F: Fn() -> Cell,
{
    let mut history: Vec<String> = Vec::new();
    for attempt in 0..=cfg.max_retries {
        let fault = cfg.faults.as_ref().and_then(|p| p.decide(key, attempt));
        let started = Instant::now();
        if fault == Some(FaultKind::Delay) {
            std::thread::sleep(std::time::Duration::from_millis(DELAY_MILLIS));
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            if fault == Some(FaultKind::Panic) {
                panic!("injected panic (fault harness) at cell [{key}]");
            }
            let mut cell = eval();
            if fault == Some(FaultKind::NanMetric) {
                match cell.metrics.first_mut() {
                    Some((_, v)) => *v = f64::NAN,
                    None => cell.metrics.push(("injected_nan".to_string(), f64::NAN)),
                }
            }
            cell
        }));
        let elapsed_ms = started.elapsed().as_millis();
        let (kind, error) = match result {
            Err(payload) => (FailKind::Panicked, panic_message(payload.as_ref())),
            Ok(cell) => {
                if let Some(budget) = cfg.timeout_ms.filter(|&b| elapsed_ms > u128::from(b)) {
                    (
                        FailKind::TimedOut,
                        format!("cell took {elapsed_ms} ms, soft timeout {budget} ms"),
                    )
                } else if let Some((name, value)) =
                    cell.metrics.iter().find(|(_, v)| !v.is_finite())
                {
                    (
                        FailKind::Invalid,
                        format!("metric {name:?} is non-finite ({value})"),
                    )
                } else {
                    return CellOutcome::Ok(cell);
                }
            }
        };
        history.push(error);
        if attempt == cfg.max_retries {
            return CellOutcome::Failed {
                kind,
                error: history.last().cloned().unwrap_or_default(),
                attempts: cfg.max_retries + 1,
                history,
            };
        }
    }
    unreachable!("the retry loop always returns")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_cell() -> Cell {
        Cell::new().metric("v", 1.5).note("tag", "x")
    }

    #[test]
    fn healthy_cell_passes_through_untouched() {
        let out = supervise(&SupervisorCfg::default(), "k", ok_cell);
        assert_eq!(out, CellOutcome::Ok(ok_cell()));
    }

    #[test]
    fn panic_is_caught_and_classified() {
        let out = supervise(&SupervisorCfg::default(), "k", || {
            panic!("cell exploded");
        });
        let CellOutcome::Failed {
            kind,
            error,
            attempts,
            history,
        } = out
        else {
            panic!("expected failure");
        };
        assert_eq!(kind, FailKind::Panicked);
        assert_eq!(error, "cell exploded");
        assert_eq!(attempts, 1);
        assert_eq!(history, vec!["cell exploded".to_string()]);
    }

    #[test]
    fn non_finite_metric_is_invalid_and_named() {
        let out = supervise(&SupervisorCfg::default(), "k", || {
            Cell::new().metric("good", 1.0).metric("bad", f64::INFINITY)
        });
        let CellOutcome::Failed { kind, error, .. } = out else {
            panic!("expected failure");
        };
        assert_eq!(kind, FailKind::Invalid);
        assert!(error.contains("\"bad\""), "{error}");
    }

    #[test]
    fn retries_are_bounded_and_history_is_complete() {
        let cfg = SupervisorCfg {
            max_retries: 2,
            ..Default::default()
        };
        let calls = std::cell::Cell::new(0u32);
        let out = supervise(&cfg, "k", || {
            let n = calls.get();
            calls.set(n + 1);
            panic!("attempt {n}");
        });
        assert_eq!(calls.get(), 3, "1 try + 2 retries");
        let CellOutcome::Failed {
            attempts, history, ..
        } = out
        else {
            panic!("expected failure");
        };
        assert_eq!(attempts, 3);
        assert_eq!(history, vec!["attempt 0", "attempt 1", "attempt 2"]);
    }

    #[test]
    fn retry_recovers_a_transient_failure_without_a_trace() {
        let cfg = SupervisorCfg {
            max_retries: 1,
            ..Default::default()
        };
        let calls = std::cell::Cell::new(0u32);
        let out = supervise(&cfg, "k", || {
            if calls.replace(calls.get() + 1) == 0 {
                panic!("transient");
            }
            ok_cell()
        });
        // A recovered cell is indistinguishable from a first-try success.
        assert_eq!(out, CellOutcome::Ok(ok_cell()));
    }

    #[test]
    fn injected_panic_fires_first_attempt_only_when_not_sticky() {
        let cfg = SupervisorCfg {
            max_retries: 1,
            faults: Some(FaultPlan::single(FaultKind::Panic, 1.0, 0)),
            ..Default::default()
        };
        let out = supervise(&cfg, "cell", ok_cell);
        assert_eq!(out, CellOutcome::Ok(ok_cell()), "retry outruns the fault");

        let sticky = SupervisorCfg {
            faults: cfg.faults.clone().map(FaultPlan::sticky),
            ..cfg
        };
        let out = supervise(&sticky, "cell", ok_cell);
        let CellOutcome::Failed { kind, attempts, .. } = out else {
            panic!("sticky fault must exhaust retries");
        };
        assert_eq!(kind, FailKind::Panicked);
        assert_eq!(attempts, 2);
    }

    #[test]
    fn injected_nan_corrupts_the_first_metric() {
        let cfg = SupervisorCfg {
            faults: Some(FaultPlan::single(FaultKind::NanMetric, 1.0, 0)),
            ..Default::default()
        };
        let CellOutcome::Failed { kind, error, .. } = supervise(&cfg, "cell", ok_cell) else {
            panic!("expected failure");
        };
        assert_eq!(kind, FailKind::Invalid);
        assert!(error.contains("\"v\""), "{error}");
    }

    #[test]
    fn timeout_classifies_after_delay_injection() {
        let cfg = SupervisorCfg {
            timeout_ms: Some(1),
            faults: Some(FaultPlan::single(FaultKind::Delay, 1.0, 0)),
            ..Default::default()
        };
        let CellOutcome::Failed { kind, error, .. } = supervise(&cfg, "cell", ok_cell) else {
            panic!("expected timeout");
        };
        assert_eq!(kind, FailKind::TimedOut);
        assert!(error.contains("soft timeout 1 ms"), "{error}");
    }
}
