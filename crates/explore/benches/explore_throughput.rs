//! Explorer throughput: candidates/sec for a fixed grid search, with and
//! without the config-keyed memo cache.
//!
//! The search space is built so distinct candidate specs resolve to
//! duplicate configurations — float knobs pinned under two spellings
//! (`8` vs `8.0`), exactly the redundancy the canonical
//! `params::config_key` collapses — giving the memoized run a 75%
//! deterministic hit rate over the same 32-candidate sequence the
//! unmemoized run simulates in full. `speedup_vs_nomemo` on the memo row
//! is gated by `bench_regress` like the kernel speedups: both sides run
//! in the same process, so the ratio survives heterogeneous CI hosts.

use diva_bench::harness::Harness;
use diva_bench::perf::{PerfRecord, PerfSink};
use diva_explore::{explore, ExploreConfig, Knob, SearchSpace, Strategy, Workload};

/// The redundant-encoding space: 32 grid specs over 8 distinct configs.
fn bench_space() -> SearchSpace {
    let knob = |param: &str, values: &[&str]| Knob {
        param: param.to_string(),
        values: values.iter().map(|v| v.to_string()).collect(),
    };
    SearchSpace {
        base: diva_core::DesignPoint::Diva,
        knobs: vec![
            knob("sram_mib", &["8", "8.0", "16", "16.0"]),
            knob("freq_mhz", &["470", "470.0", "940", "940.0"]),
            knob("drain_rows", &["4", "8"]),
        ],
    }
}

fn bench_config(memo: bool) -> ExploreConfig {
    let mut cfg = ExploreConfig::new(bench_space());
    cfg.strategy = Strategy::Grid;
    cfg.budget = 32;
    cfg.batch_size = 8;
    cfg.workloads = vec![Workload::parse("squeezenet@4").expect("bench workload")];
    cfg.memo = memo;
    cfg
}

fn main() {
    // Sanity-pin the redundancy the bench advertises: 32 lookups over 8
    // distinct configurations.
    let probe = explore(&bench_config(true)).expect("probe search");
    assert_eq!(probe.evaluated.len(), 32);
    assert_eq!(probe.stats.memo.lookups, 32);
    assert_eq!(probe.stats.memo.computed, 8, "canonical keying broke");
    let hit_rate = (probe.stats.memo.lookups - probe.stats.memo.computed) as f64
        / probe.stats.memo.lookups as f64;

    let mut h = Harness::new("explore_throughput");
    h.bench("search_memo", || explore(&bench_config(true)).unwrap())
        .bench("search_nomemo", || explore(&bench_config(false)).unwrap());

    let memo = h.get("search_memo").expect("memo measurement").clone();
    let nomemo = h.get("search_nomemo").expect("nomemo measurement").clone();
    let speedup = nomemo.secs_per_iter / memo.secs_per_iter;
    let candidates = 32.0;

    println!(
        "\nexplore_throughput: memo {:.1} cands/s, nomemo {:.1} cands/s, \
         hit rate {:.0}%, speedup {speedup:.2}x",
        candidates * memo.per_second(),
        candidates * nomemo.per_second(),
        hit_rate * 100.0
    );

    let mut sink = PerfSink::new();
    sink.push(
        PerfRecord::new("explore_search")
            .tag("backend", "nomemo")
            .metric("candidates_per_sec", candidates * nomemo.per_second()),
    );
    sink.push(
        PerfRecord::new("explore_search")
            .tag("backend", "memo")
            .metric("candidates_per_sec", candidates * memo.per_second())
            .metric("memo_hit_rate", hit_rate)
            .metric("speedup_vs_nomemo", speedup),
    );
    match sink.write_merged(None) {
        Ok(path) => println!("merged explore rows into {}", path.display()),
        Err(e) => eprintln!("failed to write explore rows: {e}"),
    }
}
