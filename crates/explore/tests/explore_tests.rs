//! Integration tests for the design-space explorer, driven through the
//! public `diva_explore` surface (the same engine the CLI, the
//! `explore_frontier` scenario and `diva-serve`'s `/explore` share):
//! seeded Pareto-dominance properties on a 500-candidate search,
//! byte-identity of the rendered frontier across worker-thread counts
//! and across a kill/`--resume` boundary, and memo-cache hit accounting
//! under racing batch evaluations.

use std::path::PathBuf;

use diva_explore::{
    dominates, explore, render, ExploreConfig, Knob, SearchSpace, Strategy, Workload,
};
use diva_tensor::Backend;

fn knob(param: &str, values: &[&str]) -> Knob {
    Knob {
        param: param.to_string(),
        values: values.iter().map(|v| v.to_string()).collect(),
    }
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("diva-explore-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fast search config: one small workload over the default 6-knob
/// space keeps a 500-candidate run in test time.
fn big_search() -> ExploreConfig {
    let mut cfg = ExploreConfig::new(SearchSpace::default_space());
    cfg.strategy = Strategy::Random;
    cfg.seed = 1234;
    cfg.budget = 500;
    cfg.batch_size = 32;
    cfg.workloads = vec![Workload::parse("squeezenet@8").expect("workload")];
    cfg
}

/// The acceptance-criterion property test: a seeded 500-candidate search
/// over the 6-knob default space yields an *exact* Pareto frontier — no
/// frontier point is dominated by any evaluated point, and every pruned
/// point is dominated by a surviving frontier point.
#[test]
fn seeded_500_candidate_search_has_an_exact_frontier() {
    let result = explore(&big_search()).expect("search runs");
    assert_eq!(result.evaluated.len(), 500, "budget fully spent");
    assert!(result.complete);

    let frontier_specs: Vec<&str> = result
        .frontier
        .points()
        .iter()
        .map(|p| p.spec.as_str())
        .collect();
    assert!(!frontier_specs.is_empty());

    for survivor in result.frontier.points() {
        let sv = survivor.objective_values();
        for other in &result.evaluated {
            assert!(
                !dominates(&other.objective_values(), &sv),
                "frontier point {} is dominated by evaluated point {}",
                survivor.spec,
                other.spec
            );
        }
    }
    for pruned in result
        .evaluated
        .iter()
        .filter(|p| !frontier_specs.contains(&p.spec.as_str()))
    {
        let pv = pruned.objective_values();
        assert!(
            result
                .frontier
                .points()
                .iter()
                .any(|s| dominates(&s.objective_values(), &pv)),
            "pruned point {} is not dominated by any frontier survivor",
            pruned.spec
        );
    }

    // The frontier's internal order is its public contract: sorted by
    // objective vector with the spec string breaking ties.
    let points = result.frontier.points();
    for pair in points.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        let key = |p: &diva_explore::EvaluatedPoint| (p.objective_values(), p.spec.clone());
        assert!(
            key(a) <= key(b),
            "frontier order broken between {} and {}",
            a.spec,
            b.spec
        );
    }
}

/// The same search renders byte-identical JSON for every worker-thread
/// count × nested-parallelism combination: candidate generation is
/// sequential, the batch fold replays results in candidate order, and
/// inside nested regions task-to-data assignment is fixed before
/// execution — scheduling (including work-stealing) never touches bytes.
#[test]
fn frontier_json_is_byte_identical_across_thread_counts_and_nesting() {
    let mut cfg = big_search();
    cfg.budget = 96;
    let reference = Backend::serial().install(|| explore(&cfg).expect("serial search"));
    let reference_json = render::render_json(&reference);
    let reference_csv = render::render_csv(&reference);
    for nested in [true, false] {
        diva_tensor::parallel::set_nested_parallelism(nested);
        for threads in [1usize, 2, 8] {
            let run = Backend::with_threads(threads).install(|| explore(&cfg).expect("search"));
            assert_eq!(
                reference_json,
                render::render_json(&run),
                "frontier JSON differs at threads={threads} nested={nested}"
            );
            assert_eq!(
                reference_csv,
                render::render_csv(&run),
                "frontier CSV differs at threads={threads} nested={nested}"
            );
            assert_eq!(
                reference.stats, run.stats,
                "counters differ at threads={threads} nested={nested}"
            );
        }
    }
    diva_tensor::parallel::set_nested_parallelism(true);
}

/// Kill/resume byte-identity through the journal: a search stopped by
/// `kill_after` mid-run and resumed from its journal renders the same
/// document as an uninterrupted run of the same config.
#[test]
fn killed_search_resumes_byte_identically() {
    let dir = tempdir("resume");
    let mut cfg = big_search();
    cfg.budget = 48;
    cfg.batch_size = 8;

    let mut fresh_cfg = cfg.clone();
    fresh_cfg.journal_dir = None;
    let fresh = explore(&fresh_cfg).expect("fresh search");

    let mut killed_cfg = cfg.clone();
    killed_cfg.journal_dir = Some(dir.clone());
    killed_cfg.kill_after = Some(13);
    let killed = explore(&killed_cfg).expect("killed search");
    assert!(!killed.complete, "kill_after must mark the run incomplete");
    assert!(killed.evaluated.len() < fresh.evaluated.len());

    let mut resumed_cfg = cfg.clone();
    resumed_cfg.journal_dir = Some(dir.clone());
    let resumed = explore(&resumed_cfg).expect("resumed search");
    assert!(resumed.complete);
    assert!(
        resumed.stats.journal_reused >= 13,
        "resume must replay the journaled points, reused {}",
        resumed.stats.journal_reused
    );
    assert_eq!(
        render::render_json(&fresh),
        render::render_json(&resumed),
        "resumed search renders different bytes than an uninterrupted run"
    );

    // A third run replays everything from the journal: zero fresh
    // simulations, same bytes again.
    let replayed = explore(&resumed_cfg).expect("replayed search");
    assert_eq!(
        replayed.stats.memo.lookups, 0,
        "full replay simulates nothing"
    );
    assert_eq!(render::render_json(&fresh), render::render_json(&replayed));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Memo-cache accounting under racing evaluations: a grid whose knob
/// values are spelled redundantly (`8` vs `8.0`) collapses 32 candidate
/// specs onto 8 canonical configs. With the whole grid dispatched as one
/// parallel batch, racing workers must still compute each config exactly
/// once — and produce the same frontier as the unmemoized baseline.
#[test]
fn memo_cache_accounts_hits_under_racing_evaluations() {
    let space = SearchSpace {
        base: diva_core::DesignPoint::Diva,
        knobs: vec![
            knob("sram_mib", &["8", "8.0", "16", "16.0"]),
            knob("freq_mhz", &["470", "470.0", "940", "940.0"]),
            knob("drain_rows", &["4", "8"]),
        ],
    };
    let mut cfg = ExploreConfig::new(space);
    cfg.strategy = Strategy::Grid;
    cfg.budget = 32;
    cfg.batch_size = 32; // the whole grid races in one dispatch
    cfg.workloads = vec![Workload::parse("squeezenet@4").expect("workload")];

    let memoized = Backend::with_threads(8).install(|| explore(&cfg).expect("memoized search"));
    assert_eq!(memoized.evaluated.len(), 32);
    assert_eq!(memoized.stats.memo.lookups, 32);
    assert_eq!(
        memoized.stats.memo.computed, 8,
        "canonical config keying must collapse the redundant spellings"
    );

    let mut nomemo_cfg = cfg.clone();
    nomemo_cfg.memo = false;
    let nomemo = explore(&nomemo_cfg).expect("unmemoized search");
    assert_eq!(
        nomemo.stats.memo.computed, 32,
        "baseline simulates every spec"
    );
    assert_eq!(
        render::render_json(&memoized),
        render::render_json(&nomemo),
        "memoization changed the rendered result"
    );
}
