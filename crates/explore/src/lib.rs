//! `diva-explore` — the CLI front door of the design-space explorer.
//!
//! The search engine itself lives in [`diva_bench::explore`] (it shares
//! the scenario journal, the parallel runner and the registered
//! `explore_frontier` regression gate); this crate re-exports it and adds
//! the command-line driver plus the `explore_throughput` bench target.
//!
//! ```text
//! diva-explore --strategy halving --budget 120 --seed 7 --json frontier.json
//! diva-explore --knob pe.rows=64|128|256 --knob freq_mhz=470|940 \
//!              --objectives latency,energy --workloads squeezenet@16
//! diva-explore --budget 500 --resume /tmp/search   # continue a killed run
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

pub use diva_bench::explore::{
    dominates, explore, render, EvalCache, EvaluatedPoint, ExploreConfig, ExploreResult,
    ExploreStats, Frontier, Knob, MemoStats, Objective, SearchSpace, Strategy, Workload,
};
