//! The `diva-explore` binary: a thin shim over [`diva_explore::cli`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    diva_explore::cli::main_with(&argv)
}
