//! Argument parsing and the top-level run loop for the `diva-explore`
//! binary, kept in the library so integration tests can drive the exact
//! CLI path in-process.

use std::process::ExitCode;

use diva_bench::explore::{
    explore, render, ExploreConfig, Knob, Objective, SearchSpace, Strategy, Workload,
};
use diva_bench::print_table;
use diva_bench::scenario::ScenarioError;
use diva_core::DesignPoint;

/// CLI usage text.
pub const USAGE: &str = "\
usage: diva-explore [options]

Searches the accelerator design space around a preset and reports the
exact Pareto frontier over the chosen objectives (all minimized).

options:
  --strategy S         grid | random | halving (default random)
  --budget N           max candidates to evaluate (default 64)
  --seed N             RNG seed for random/halving (default 42)
  --batch-size N       candidates per parallel dispatch batch (default 16)
  --objectives A,B     latency, energy, area (default all three)
  --workloads W,..     model@batch list (default squeezenet@32,mobilenet@32);
                       models: vgg16 resnet50 resnet152 squeezenet mobilenet
                       bert_base bert_large lstm_small lstm_large
  --base P             preset to search around: ws | os | diva-no-ppu | diva
                       (default diva)
  --knob K=V1|V2|..    add a knob (repeatable; replaces the default 6-knob
                       space; K is a registry name, see --list-knobs)
  --resume DIR         journal evaluated points under DIR and reuse them:
                       a killed search continues byte-identically
  --kill-after N       stop after journaling N fresh points (CI resume smoke)
  --json PATH          write the diva-explore/v1 frontier document (\"-\" = stdout)
  --csv PATH           write the frontier as CSV (\"-\" = stdout)
  --no-table           suppress the text summary
  --list-knobs         list the registered parameters and exit
  --help               show this help

exit codes:
  0 success (including a --kill-after stop)    1 usage/config error
  4 resume-journal error";

/// Parsed command line.
struct Args {
    config: ExploreConfig,
    json: Option<String>,
    csv: Option<String>,
    no_table: bool,
    list_knobs: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut config = ExploreConfig::new(SearchSpace::default_space());
    let mut knobs: Vec<Knob> = Vec::new();
    let mut json = None;
    let mut csv = None;
    let mut no_table = false;
    let mut list_knobs = false;
    let mut it = argv.iter();
    let value_of = |it: &mut std::slice::Iter<String>, flag: &str| -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let parse_num = |raw: &str, flag: &str| -> Result<u64, String> {
        raw.parse()
            .map_err(|e| format!("{flag} wants an integer: {e}"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--no-table" => no_table = true,
            "--list-knobs" => list_knobs = true,
            "--strategy" => config.strategy = Strategy::parse(&value_of(&mut it, "--strategy")?)?,
            "--budget" => {
                config.budget = parse_num(&value_of(&mut it, "--budget")?, "--budget")? as usize;
            }
            "--seed" => config.seed = parse_num(&value_of(&mut it, "--seed")?, "--seed")?,
            "--batch-size" => {
                config.batch_size =
                    parse_num(&value_of(&mut it, "--batch-size")?, "--batch-size")? as usize;
            }
            "--kill-after" => {
                config.kill_after =
                    Some(parse_num(&value_of(&mut it, "--kill-after")?, "--kill-after")? as usize);
            }
            "--objectives" => {
                config.objectives = Objective::parse_list(&value_of(&mut it, "--objectives")?)?;
            }
            "--workloads" => {
                let raw = value_of(&mut it, "--workloads")?;
                let workloads: Result<Vec<Workload>, String> = raw
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(Workload::parse)
                    .collect();
                config.workloads = workloads?;
                if config.workloads.is_empty() {
                    return Err("--workloads wants at least one model@batch".to_string());
                }
            }
            "--base" => {
                let raw = value_of(&mut it, "--base")?;
                config.space.base = DesignPoint::parse(&raw).map_err(|e| format!("--base: {e}"))?;
            }
            "--knob" => knobs.push(Knob::parse(&value_of(&mut it, "--knob")?)?),
            "--resume" => config.journal_dir = Some(value_of(&mut it, "--resume")?.into()),
            "--json" => json = Some(value_of(&mut it, "--json")?),
            "--csv" => csv = Some(value_of(&mut it, "--csv")?),
            other => return Err(format!("unknown argument {other:?}\n\n{USAGE}")),
        }
    }
    if !knobs.is_empty() {
        config.space.knobs = knobs;
    }
    Ok(Args {
        config,
        json,
        csv,
        no_table,
        list_knobs,
    })
}

/// Prints the parameter registry with the base preset's defaults.
fn print_knobs() {
    let default = DesignPoint::Diva.config();
    let rows: Vec<Vec<String>> = diva_arch::params::PARAMS
        .iter()
        .map(|p| {
            vec![
                p.name.to_string(),
                (p.get)(&default).format(),
                p.doc.to_string(),
            ]
        })
        .collect();
    print_table(
        "Registered knobs (diva-explore --knob NAME=V1|V2|...)",
        &["name", "DiVa default", "description"],
        &rows,
    );
}

fn run(args: &Args) -> Result<ExitCode, ScenarioError> {
    if args.list_knobs {
        print_knobs();
        return Ok(ExitCode::SUCCESS);
    }
    let result = explore(&args.config)?;
    if !args.no_table {
        print!("{}", render::render_text(&result));
    }
    if !result.complete {
        // A --kill-after stop is a successful partial run, but its
        // artifacts would describe a truncated search — refuse to write
        // them so CI can only ever compare complete documents.
        eprintln!(
            "diva-explore: stopped by --kill-after with {} point(s) journaled; \
             re-run with --resume to continue (no artifacts written)",
            result.evaluated.len()
        );
        return Ok(ExitCode::SUCCESS);
    }
    let write = |path: &str, text: &str| -> Result<(), ScenarioError> {
        if path == "-" {
            print!("{text}");
            return Ok(());
        }
        std::fs::write(path, text).map_err(|e| ScenarioError::Io {
            path: path.to_string(),
            message: e.to_string(),
        })?;
        eprintln!("wrote {path}");
        Ok(())
    };
    if let Some(path) = &args.json {
        write(path, &render::render_json(&result))?;
    }
    if let Some(path) = &args.csv {
        write(path, &render::render_csv(&result))?;
    }
    Ok(ExitCode::SUCCESS)
}

/// The `diva-explore` entry point (parse, search, render, map errors to
/// exit codes).
pub fn main_with(argv: &[String]) -> ExitCode {
    let args = match parse_args(argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(err) => {
            eprintln!("diva-explore: {err}");
            ExitCode::from(err.exit_code())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_builds_a_config() {
        let args = parse_args(&argv(&[
            "--strategy",
            "halving",
            "--budget",
            "10",
            "--seed",
            "7",
            "--objectives",
            "latency,area",
            "--workloads",
            "squeezenet@8",
            "--knob",
            "pe.rows=64|128",
            "--base",
            "ws",
        ]))
        .expect("parses");
        assert_eq!(args.config.strategy, Strategy::Halving);
        assert_eq!(args.config.budget, 10);
        assert_eq!(args.config.seed, 7);
        assert_eq!(
            args.config.objectives,
            vec![Objective::Latency, Objective::Area]
        );
        assert_eq!(args.config.workloads.len(), 1);
        assert_eq!(args.config.space.knobs.len(), 1);
        assert_eq!(args.config.space.base, DesignPoint::WsBaseline);
    }

    #[test]
    fn parse_rejects_bad_flags() {
        assert!(parse_args(&argv(&["--strategy", "nope"])).is_err());
        assert!(parse_args(&argv(&["--objectives", "speed"])).is_err());
        assert!(parse_args(&argv(&["--knob", "bogus=1|2"])).is_err());
        assert!(parse_args(&argv(&["--base", "gpu"])).is_err());
        assert!(parse_args(&argv(&["--budget"])).is_err());
        assert!(parse_args(&argv(&["--frontier"])).is_err());
    }

    #[test]
    fn default_space_survives_when_no_knobs_given() {
        let args = parse_args(&argv(&[])).expect("parses");
        assert_eq!(args.config.space.knobs.len(), 6);
        assert_eq!(args.config.space.base, DesignPoint::Diva);
    }
}
