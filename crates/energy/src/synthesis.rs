//! Synthesis-proxy area/power model, calibrated to the paper's Table III.

use diva_arch::Dataflow;

/// Area and power of one hardware component.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ComponentCost {
    /// Silicon area in mm² (65 nm standard cells).
    pub area_mm2: f64,
    /// Power at full activity in watts (0.94 GHz, 65 nm).
    pub power_w: f64,
}

impl ComponentCost {
    /// Component-wise sum.
    pub fn plus(self, other: ComponentCost) -> ComponentCost {
        ComponentCost {
            area_mm2: self.area_mm2 + other.area_mm2,
            power_w: self.power_w + other.power_w,
        }
    }
}

/// A component-level area/power model of the three GEMM engines and the
/// PPU, with constants calibrated so the assembled totals reproduce the
/// paper's synthesis results (Table III).
///
/// The decomposition (MAC array + per-dataflow overhead) is what a
/// synthesis report would show; only the constants are fitted.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SynthesisModel {
    /// Number of MAC units (16,384 for the 128×128 array).
    pub mac_count: u64,
    /// Area of one BF16×BF16+FP32 MAC with pipeline latches, mm².
    pub mac_area_mm2: f64,
    /// Dynamic power of one MAC at full activity, W.
    pub mac_power_w: f64,
    /// WS extras: weight latches, vertical psum chains, control.
    pub ws_overhead: ComponentCost,
    /// OS extras: in-place accumulators, dual operand registers.
    pub os_overhead: ComponentCost,
    /// Outer-product extras: per-row/column broadcast buses and drivers —
    /// the paper's "all-to-all multiplication datapath" (Section IV-D).
    pub outer_overhead: ComponentCost,
    /// PPU: R = 8 pipelined 7-level FP32 adder trees plus squaring units.
    pub ppu: ComponentCost,
}

impl SynthesisModel {
    /// The calibrated 65 nm / 940 MHz model matching Table III.
    pub fn calibrated() -> Self {
        Self {
            mac_count: 16_384,
            // 16,384 MACs ≈ 57.3 mm² / 11.5 W: the common core of all
            // three engines.
            mac_area_mm2: 0.0035,
            mac_power_w: 0.0007,
            ws_overhead: ComponentCost {
                area_mm2: 10.7,
                power_w: 1.9,
            },
            os_overhead: ComponentCost {
                area_mm2: 12.7,
                power_w: 2.1,
            },
            outer_overhead: ComponentCost {
                area_mm2: 24.7,
                power_w: 9.7,
            },
            ppu: ComponentCost {
                area_mm2: 3.0,
                power_w: 2.6,
            },
        }
    }

    /// The MAC array alone.
    pub fn mac_array(&self) -> ComponentCost {
        ComponentCost {
            area_mm2: self.mac_area_mm2 * self.mac_count as f64,
            power_w: self.mac_power_w * self.mac_count as f64,
        }
    }

    /// Area/power of a full GEMM engine, optionally with the PPU attached.
    pub fn engine(&self, dataflow: Dataflow, with_ppu: bool) -> ComponentCost {
        let overhead = match dataflow {
            Dataflow::WeightStationary => self.ws_overhead,
            Dataflow::OutputStationary => self.os_overhead,
            Dataflow::OuterProduct => self.outer_overhead,
        };
        let mut total = self.mac_array().plus(overhead);
        if with_ppu {
            total = total.plus(self.ppu);
        }
        total
    }

    /// Area/power of the GEMM engine a *configuration* describes: the
    /// calibrated 128×128-array costs scaled linearly to the configured
    /// MAC count (datapath overheads — latches, accumulators, broadcast
    /// buses — grow with the array), plus the PPU scaled to the
    /// configured drain rate (`R` adder trees; the paper's unit is
    /// R = 8). This is the design-space explorer's area objective. At
    /// the Table II configuration it reproduces
    /// [`Self::engine`]`(dataflow, has_ppu)` bit-for-bit.
    pub fn engine_cost_for(&self, config: &diva_arch::AcceleratorConfig) -> ComponentCost {
        let mac_scale = config.pe.macs() as f64 / self.mac_count as f64;
        let overhead = match config.dataflow {
            Dataflow::WeightStationary => self.ws_overhead,
            Dataflow::OutputStationary => self.os_overhead,
            Dataflow::OuterProduct => self.outer_overhead,
        };
        let engine = self.mac_array().plus(overhead);
        let mut total = ComponentCost {
            area_mm2: engine.area_mm2 * mac_scale,
            power_w: engine.power_w * mac_scale,
        };
        if config.has_ppu {
            let ppu_scale = config.drain_rows_per_cycle as f64 / 8.0;
            total = total.plus(ComponentCost {
                area_mm2: self.ppu.area_mm2 * ppu_scale,
                power_w: self.ppu.power_w * ppu_scale,
            });
        }
        total
    }

    /// DiVa's area overhead versus the WS baseline as a fraction — the
    /// paper reports 19.6% for the engine plus 4.6% for the PPU.
    pub fn area_overhead_vs_ws(&self, with_ppu: bool) -> f64 {
        let ws = self.engine(Dataflow::WeightStationary, false).area_mm2;
        let diva = self.engine(Dataflow::OuterProduct, with_ppu).area_mm2;
        (diva - ws) / ws
    }
}

impl Default for SynthesisModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_table_iii() {
        let s = SynthesisModel::calibrated();
        let ws = s.engine(Dataflow::WeightStationary, false);
        let os = s.engine(Dataflow::OutputStationary, false);
        let op = s.engine(Dataflow::OuterProduct, false);
        assert!((ws.area_mm2 - 68.0).abs() < 1.0, "{}", ws.area_mm2);
        assert!((os.area_mm2 - 70.0).abs() < 1.0, "{}", os.area_mm2);
        assert!((op.area_mm2 - 82.0).abs() < 1.0, "{}", op.area_mm2);
        assert!((ws.power_w - 13.4).abs() < 0.2, "{}", ws.power_w);
        assert!((os.power_w - 13.6).abs() < 0.2, "{}", os.power_w);
        assert!((op.power_w - 21.2).abs() < 0.2, "{}", op.power_w);
    }

    #[test]
    fn overhead_fractions_match_section_vi_b() {
        let s = SynthesisModel::calibrated();
        // Outer-product engine alone: ~19.6% over WS.
        assert!((s.area_overhead_vs_ws(false) - 0.196).abs() < 0.02);
        // With the PPU: ~24–25% over WS (19.6% + 4.6%).
        assert!((s.area_overhead_vs_ws(true) - 0.242).abs() < 0.02);
    }

    #[test]
    fn diva_power_delta_matches_paper() {
        // Paper: +7.8 W (outer-product datapath) + 2.6 W (PPU) vs WS.
        let s = SynthesisModel::calibrated();
        let ws = s.engine(Dataflow::WeightStationary, false).power_w;
        let diva = s.engine(Dataflow::OuterProduct, true).power_w;
        assert!((diva - ws - 10.4).abs() < 0.2, "{}", diva - ws);
    }

    #[test]
    fn engine_cost_for_reproduces_table_ii_points_bitwise() {
        use diva_arch::AcceleratorConfig;
        let s = SynthesisModel::calibrated();
        for df in Dataflow::ALL {
            let cfg = AcceleratorConfig::tpu_v3_like(df);
            let direct = s.engine(df, cfg.has_ppu);
            let derived = s.engine_cost_for(&cfg);
            assert_eq!(derived.area_mm2, direct.area_mm2, "{df:?}");
            assert_eq!(derived.power_w, direct.power_w, "{df:?}");
        }
    }

    #[test]
    fn engine_cost_scales_with_array_and_drain_rate() {
        use diva_arch::AcceleratorConfig;
        let s = SynthesisModel::calibrated();
        let base = AcceleratorConfig::tpu_v3_like(Dataflow::OuterProduct);
        let mut small = base.clone();
        small.pe.rows = 64;
        small.pe.cols = 64;
        let mut fat_ppu = base.clone();
        fat_ppu.drain_rows_per_cycle = 16;
        assert!(s.engine_cost_for(&small).area_mm2 < s.engine_cost_for(&base).area_mm2);
        let delta = s.engine_cost_for(&fat_ppu).area_mm2 - s.engine_cost_for(&base).area_mm2;
        assert!(
            (delta - s.ppu.area_mm2).abs() < 1e-12,
            "doubling R adds one PPU's area"
        );
    }

    #[test]
    fn mac_array_dominates_every_engine() {
        let s = SynthesisModel::calibrated();
        let macs = s.mac_array();
        for df in Dataflow::ALL {
            let engine = s.engine(df, false);
            assert!(macs.area_mm2 / engine.area_mm2 > 0.5);
        }
    }
}
