//! Area, power and energy models for the DiVa reproduction.
//!
//! The paper obtains these numbers from Synopsys Design Compiler synthesis
//! of SystemVerilog RTL at 65 nm (compute units), CACTI (SRAM) and the
//! Horowitz ISSCC'14 energy model (DRAM). We have no EDA tools, so this
//! crate provides **parametric component models whose free constants are
//! calibrated to the paper's published synthesis results** (Table III and
//! Section VI-B):
//!
//! | engine        | area    | power   |
//! |---------------|---------|---------|
//! | Systolic WS   | 68 mm²  | 13.4 W  |
//! | Systolic OS   | 70 mm²  | 13.6 W  |
//! | Outer-product | 82 mm²  | 21.2 W  |
//! | + PPU         | +3 mm²  | +2.6 W  |
//!
//! Per-workload energy (Figure 16) is then derived from simulated busy
//! time, utilization, and SRAM/DRAM access counts — the same accounting the
//! paper performs.
//!
//! # Example
//!
//! ```
//! use diva_arch::Dataflow;
//! use diva_energy::SynthesisModel;
//!
//! let synth = SynthesisModel::calibrated();
//! let ws = synth.engine(Dataflow::WeightStationary, false);
//! assert!((ws.area_mm2 - 68.0).abs() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accounting;
mod synthesis;
mod table3;

pub use accounting::{DvfsScaling, EnergyModel, EnergyReport};
pub use synthesis::{ComponentCost, SynthesisModel};
pub use table3::{table_iii, TableIiiRow};
