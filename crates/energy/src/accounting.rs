//! Per-training-step energy accounting (paper Figure 16).
//!
//! `E = E_engine + E_ppu + E_sram + E_dram + E_uncore`, with the engine
//! split into an activity-proportional dynamic part and an idle/leakage
//! part, SRAM energy per byte from a CACTI-style capacity curve, and DRAM
//! energy per byte from the Horowitz ISSCC'14 model.
//!
//! # Voltage/frequency scaling
//!
//! The synthesis constants are calibrated at the paper's nominal clock
//! (Table II: 940 MHz). When a design point overrides `freq_mhz`, the
//! model applies a linear DVFS rail (`V ∝ f`, [`DvfsScaling`]):
//!
//! * **dynamic** power (`C·V²·f`) scales as `(f/f₀)³`, so the energy of a
//!   fixed amount of work (per MAC, per SRAM byte) scales as `(f/f₀)²`;
//! * **static** power (leakage, `∝ V`) scales as `(f/f₀)`;
//! * DRAM per-byte energy and the uncore (DMA engines, IO — their own
//!   always-on domain) are unscaled.
//!
//! At the nominal frequency every factor is exactly `1.0`, so existing
//! Table II-scale results are bit-identical with or without this model.

use diva_arch::AcceleratorConfig;
use diva_sim::StepTiming;

use crate::synthesis::SynthesisModel;

/// Energy breakdown of one training step, in joules.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyReport {
    /// GEMM-engine energy (dynamic + idle).
    pub engine_j: f64,
    /// Post-processing unit energy.
    pub ppu_j: f64,
    /// On-chip SRAM access energy.
    pub sram_j: f64,
    /// Off-chip DRAM access energy.
    pub dram_j: f64,
    /// Uncore energy (vector unit, DMA, NoC, IO) — time-proportional.
    pub uncore_j: f64,
}

impl EnergyReport {
    /// Total energy in joules.
    pub fn total(&self) -> f64 {
        self.engine_j + self.ppu_j + self.sram_j + self.dram_j + self.uncore_j
    }
}

/// The DVFS factors applied at a given clock under the linear `V ∝ f`
/// rail model, relative to the calibration frequency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DvfsScaling {
    /// `V/V₀ = f/f₀`: the supply-voltage ratio.
    pub voltage: f64,
    /// `(f/f₀)³`: multiplier on dynamic (switching) power.
    pub dynamic_power: f64,
    /// `f/f₀`: multiplier on static (leakage) power.
    pub static_power: f64,
}

/// The assembled energy model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Component area/power model.
    pub synthesis: SynthesisModel,
    /// The clock the synthesis powers were calibrated at (Table II:
    /// 940 MHz). DVFS factors are relative to this.
    pub nominal_freq_hz: f64,
    /// Fraction of engine power that is activity-independent (clock tree,
    /// leakage). The rest scales with MAC utilization.
    pub engine_idle_fraction: f64,
    /// SRAM access energy in pJ/byte for the 16 MB buffer (CACTI-style
    /// figure at 65 nm; large SRAMs land in the single-digit pJ/byte range).
    pub sram_pj_per_byte: f64,
    /// DRAM access energy in pJ/byte (Horowitz ISSCC'14 reports
    /// 1.3–2.6 nJ per 64-bit DRAM access → ~20 pJ/bit; we use 160 pJ/byte).
    pub dram_pj_per_byte: f64,
    /// Constant uncore power in watts (vector unit, DMA engines, control,
    /// I/O) charged for the whole step duration.
    pub uncore_power_w: f64,
}

impl EnergyModel {
    /// The calibrated default model.
    pub fn calibrated() -> Self {
        Self {
            synthesis: SynthesisModel::calibrated(),
            nominal_freq_hz: 940e6,
            engine_idle_fraction: 0.3,
            sram_pj_per_byte: 6.0,
            dram_pj_per_byte: 160.0,
            uncore_power_w: 25.0,
        }
    }

    /// The DVFS factors for a clock of `freq_hz` under the linear
    /// `V ∝ f` rail: dynamic power scales as `(f/f₀)³`, static power as
    /// `f/f₀`. Exactly `1.0` across the board at the nominal clock.
    pub fn dvfs(&self, freq_hz: f64) -> DvfsScaling {
        let v = freq_hz / self.nominal_freq_hz;
        DvfsScaling {
            voltage: v,
            dynamic_power: v * v * v,
            static_power: v,
        }
    }

    /// Computes the energy of one simulated training step on the given
    /// accelerator configuration.
    ///
    /// Engine dynamic energy is charged per useful MAC
    /// (`P_dyn / peak_mac_rate`); idle energy and uncore power are charged
    /// for the full step duration. Dynamic powers (engine switching, PPU,
    /// SRAM access) carry the [`DvfsScaling::dynamic_power`] factor for
    /// the configured clock; the engine's idle/leakage share carries
    /// [`DvfsScaling::static_power`]; DRAM and uncore are unscaled.
    pub fn step_energy(&self, config: &AcceleratorConfig, step: &StepTiming) -> EnergyReport {
        let seconds = step.total_cycles() as f64 / config.freq_hz;
        let engine = self.synthesis.engine(config.dataflow, false);
        let dvfs = self.dvfs(config.freq_hz);

        let peak_macs_per_sec = config.peak_macs_per_sec();
        let dynamic_power = engine.power_w * (1.0 - self.engine_idle_fraction) * dvfs.dynamic_power;
        let energy_per_mac = dynamic_power / peak_macs_per_sec;
        let engine_j = energy_per_mac * step.total_macs() as f64
            + engine.power_w * self.engine_idle_fraction * dvfs.static_power * seconds;

        let ppu_j = if config.has_ppu {
            self.synthesis.ppu.power_w * dvfs.dynamic_power * seconds
        } else {
            0.0
        };
        let sram_j = self.sram_pj_per_byte
            * dvfs.voltage
            * dvfs.voltage
            * 1e-12
            * step.total_sram_bytes() as f64;
        let dram_j = self.dram_pj_per_byte * 1e-12 * step.total_dram_bytes() as f64;
        let uncore_j = self.uncore_power_w * seconds;

        EnergyReport {
            engine_j,
            ppu_j,
            sram_j,
            dram_j,
            uncore_j,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_arch::{Dataflow, GemmShape, Phase, TrainingOp};
    use diva_sim::Simulator;

    fn step(df: Dataflow, ops: &[TrainingOp]) -> (AcceleratorConfig, StepTiming) {
        let cfg = AcceleratorConfig::tpu_v3_like(df);
        let sim = Simulator::new(cfg.clone()).unwrap();
        let t = sim.time_step(ops);
        (cfg, t)
    }

    #[test]
    fn energy_is_positive_and_decomposes() {
        let ops = vec![TrainingOp::gemm(
            GemmShape::new(1024, 512, 1024),
            Phase::Forward,
            "fc",
        )];
        let (cfg, t) = step(Dataflow::WeightStationary, &ops);
        let e = EnergyModel::calibrated().step_energy(&cfg, &t);
        assert!(e.total() > 0.0);
        let sum = e.engine_j + e.ppu_j + e.sram_j + e.dram_j + e.uncore_j;
        assert!((e.total() - sum).abs() < 1e-15);
        // WS has no PPU.
        assert_eq!(e.ppu_j, 0.0);
    }

    #[test]
    fn faster_engine_saves_energy_on_skinny_gemms() {
        // Per-example gradient pattern: many small-K GEMMs, ephemeral.
        let ops = vec![TrainingOp::gemm_batch_ephemeral(
            GemmShape::new(4608, 16, 512),
            32,
            Phase::BwdPerExampleGrad,
            "conv",
        )];
        let (ws_cfg, ws_t) = step(Dataflow::WeightStationary, &ops);
        let (diva_cfg, diva_t) = step(Dataflow::OuterProduct, &ops);
        let model = EnergyModel::calibrated();
        let e_ws = model.step_energy(&ws_cfg, &ws_t).total();
        let e_diva = model.step_energy(&diva_cfg, &diva_t).total();
        assert!(
            e_diva < e_ws,
            "DiVa {e_diva} J should beat WS {e_ws} J on per-example gradients"
        );
    }

    #[test]
    fn dram_energy_scales_with_traffic() {
        let small = vec![TrainingOp::gemm(
            GemmShape::new(128, 128, 128),
            Phase::Forward,
            "s",
        )];
        let big = vec![TrainingOp::gemm(
            GemmShape::new(4096, 128, 4096),
            Phase::Forward,
            "b",
        )];
        let model = EnergyModel::calibrated();
        let (cfg, ts) = step(Dataflow::WeightStationary, &small);
        let (_, tb) = step(Dataflow::WeightStationary, &big);
        let es = model.step_energy(&cfg, &ts);
        let eb = model.step_energy(&cfg, &tb);
        assert!(eb.dram_j > 10.0 * es.dram_j);
    }

    /// Builds a timing at a non-nominal clock by rescaling the config
    /// frequency (the simulator's cycle counts are frequency-independent).
    fn step_at(freq_hz: f64, df: Dataflow, ops: &[TrainingOp]) -> (AcceleratorConfig, StepTiming) {
        let mut cfg = AcceleratorConfig::tpu_v3_like(df);
        cfg.freq_hz = freq_hz;
        let sim = Simulator::new(cfg.clone()).unwrap();
        let t = sim.time_step(ops);
        (cfg, t)
    }

    #[test]
    fn dvfs_factors_are_unity_at_nominal() {
        let model = EnergyModel::calibrated();
        let dvfs = model.dvfs(model.nominal_freq_hz);
        assert_eq!(dvfs.voltage, 1.0);
        assert_eq!(dvfs.dynamic_power, 1.0);
        assert_eq!(dvfs.static_power, 1.0);
        // Half clock: half voltage, 1/8 dynamic power, half leakage.
        let half = model.dvfs(model.nominal_freq_hz / 2.0);
        assert_eq!(half.voltage, 0.5);
        assert_eq!(half.dynamic_power, 0.125);
        assert_eq!(half.static_power, 0.5);
    }

    #[test]
    fn nominal_clock_energy_matches_legacy_formula_bitwise() {
        // The DVFS factors must not perturb Table II-scale results: at
        // 940 MHz the scaled formula reduces to the pre-DVFS one exactly.
        let ops = vec![TrainingOp::gemm(
            GemmShape::new(1024, 512, 1024),
            Phase::Forward,
            "fc",
        )];
        let (cfg, t) = step(Dataflow::OuterProduct, &ops);
        assert_eq!(cfg.freq_hz, 940e6);
        let m = EnergyModel::calibrated();
        let e = m.step_energy(&cfg, &t);
        let seconds = t.total_cycles() as f64 / cfg.freq_hz;
        let engine = m.synthesis.engine(cfg.dataflow, false);
        let legacy_engine = engine.power_w * (1.0 - m.engine_idle_fraction)
            / cfg.peak_macs_per_sec()
            * t.total_macs() as f64
            + engine.power_w * m.engine_idle_fraction * seconds;
        assert_eq!(e.engine_j, legacy_engine);
        assert_eq!(
            e.sram_j,
            m.sram_pj_per_byte * 1e-12 * t.total_sram_bytes() as f64
        );
        assert_eq!(e.ppu_j, m.synthesis.ppu.power_w * seconds);
    }

    #[test]
    fn underclocking_trades_time_for_energy() {
        let ops = vec![TrainingOp::gemm(
            GemmShape::new(2048, 512, 2048),
            Phase::Forward,
            "fc",
        )];
        let model = EnergyModel::calibrated();
        let (nom_cfg, nom_t) = step_at(940e6, Dataflow::OuterProduct, &ops);
        let (slow_cfg, slow_t) = step_at(470e6, Dataflow::OuterProduct, &ops);
        assert_eq!(nom_t.total_cycles(), slow_t.total_cycles());
        let nom = model.step_energy(&nom_cfg, &nom_t);
        let slow = model.step_energy(&slow_cfg, &slow_t);
        // Per-MAC dynamic energy scales as V² = (f/f₀)²: the same work
        // costs the engine and SRAM less at half clock...
        assert!(slow.sram_j < nom.sram_j);
        assert!(slow.engine_j < nom.engine_j);
        // ...but the step takes twice as long, so the (unscaled) uncore
        // charge doubles. DVFS is a real tradeoff, not a free win.
        assert!(slow.uncore_j > 1.9 * nom.uncore_j);
        // And DRAM traffic energy is clock-independent.
        assert_eq!(slow.dram_j, nom.dram_j);
    }

    #[test]
    fn overclocking_inflates_dynamic_energy_quadratically() {
        let ops = vec![TrainingOp::gemm(
            GemmShape::new(1024, 256, 1024),
            Phase::Forward,
            "fc",
        )];
        let model = EnergyModel::calibrated();
        let (nom_cfg, nom_t) = step_at(940e6, Dataflow::WeightStationary, &ops);
        let (fast_cfg, fast_t) = step_at(1880e6, Dataflow::WeightStationary, &ops);
        let nom = model.step_energy(&nom_cfg, &nom_t);
        let fast = model.step_energy(&fast_cfg, &fast_t);
        // SRAM access energy is pure dynamic-per-byte: exactly V² = 4x.
        assert!((fast.sram_j / nom.sram_j - 4.0).abs() < 1e-12);
        // Engine: dynamic part 4x, idle part 2x (leakage) over half the
        // time (= 1x) — strictly more than nominal, less than 4x total.
        assert!(fast.engine_j > nom.engine_j);
        assert!(fast.engine_j < 4.0 * nom.engine_j);
    }

    #[test]
    fn idle_energy_charged_even_with_zero_macs() {
        let ops = vec![TrainingOp::vector(
            diva_arch::VectorOpKind::GradNorm,
            1 << 20,
            4,
            false,
            Phase::BwdGradNorm,
            "norm",
        )];
        let (cfg, t) = step(Dataflow::WeightStationary, &ops);
        let e = EnergyModel::calibrated().step_energy(&cfg, &t);
        assert_eq!(t.total_macs(), 0);
        assert!(e.engine_j > 0.0); // idle fraction
        assert!(e.uncore_j > 0.0);
    }
}
