//! Per-training-step energy accounting (paper Figure 16).
//!
//! `E = E_engine + E_ppu + E_sram + E_dram + E_uncore`, with the engine
//! split into an activity-proportional dynamic part and an idle/leakage
//! part, SRAM energy per byte from a CACTI-style capacity curve, and DRAM
//! energy per byte from the Horowitz ISSCC'14 model.

use diva_arch::AcceleratorConfig;
use diva_sim::StepTiming;

use crate::synthesis::SynthesisModel;

/// Energy breakdown of one training step, in joules.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyReport {
    /// GEMM-engine energy (dynamic + idle).
    pub engine_j: f64,
    /// Post-processing unit energy.
    pub ppu_j: f64,
    /// On-chip SRAM access energy.
    pub sram_j: f64,
    /// Off-chip DRAM access energy.
    pub dram_j: f64,
    /// Uncore energy (vector unit, DMA, NoC, IO) — time-proportional.
    pub uncore_j: f64,
}

impl EnergyReport {
    /// Total energy in joules.
    pub fn total(&self) -> f64 {
        self.engine_j + self.ppu_j + self.sram_j + self.dram_j + self.uncore_j
    }
}

/// The assembled energy model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Component area/power model.
    pub synthesis: SynthesisModel,
    /// Fraction of engine power that is activity-independent (clock tree,
    /// leakage). The rest scales with MAC utilization.
    pub engine_idle_fraction: f64,
    /// SRAM access energy in pJ/byte for the 16 MB buffer (CACTI-style
    /// figure at 65 nm; large SRAMs land in the single-digit pJ/byte range).
    pub sram_pj_per_byte: f64,
    /// DRAM access energy in pJ/byte (Horowitz ISSCC'14 reports
    /// 1.3–2.6 nJ per 64-bit DRAM access → ~20 pJ/bit; we use 160 pJ/byte).
    pub dram_pj_per_byte: f64,
    /// Constant uncore power in watts (vector unit, DMA engines, control,
    /// I/O) charged for the whole step duration.
    pub uncore_power_w: f64,
}

impl EnergyModel {
    /// The calibrated default model.
    pub fn calibrated() -> Self {
        Self {
            synthesis: SynthesisModel::calibrated(),
            engine_idle_fraction: 0.3,
            sram_pj_per_byte: 6.0,
            dram_pj_per_byte: 160.0,
            uncore_power_w: 25.0,
        }
    }

    /// Computes the energy of one simulated training step on the given
    /// accelerator configuration.
    ///
    /// Engine dynamic energy is charged per useful MAC
    /// (`P_dyn / peak_mac_rate`); idle energy and uncore power are charged
    /// for the full step duration.
    pub fn step_energy(&self, config: &AcceleratorConfig, step: &StepTiming) -> EnergyReport {
        let seconds = step.total_cycles() as f64 / config.freq_hz;
        let engine = self.synthesis.engine(config.dataflow, false);

        let peak_macs_per_sec = config.peak_macs_per_sec();
        let dynamic_power = engine.power_w * (1.0 - self.engine_idle_fraction);
        let energy_per_mac = dynamic_power / peak_macs_per_sec;
        let engine_j = energy_per_mac * step.total_macs() as f64
            + engine.power_w * self.engine_idle_fraction * seconds;

        let ppu_j = if config.has_ppu {
            self.synthesis.ppu.power_w * seconds
        } else {
            0.0
        };
        let sram_j = self.sram_pj_per_byte * 1e-12 * step.total_sram_bytes() as f64;
        let dram_j = self.dram_pj_per_byte * 1e-12 * step.total_dram_bytes() as f64;
        let uncore_j = self.uncore_power_w * seconds;

        EnergyReport {
            engine_j,
            ppu_j,
            sram_j,
            dram_j,
            uncore_j,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_arch::{Dataflow, GemmShape, Phase, TrainingOp};
    use diva_sim::Simulator;

    fn step(df: Dataflow, ops: &[TrainingOp]) -> (AcceleratorConfig, StepTiming) {
        let cfg = AcceleratorConfig::tpu_v3_like(df);
        let sim = Simulator::new(cfg.clone()).unwrap();
        let t = sim.time_step(ops);
        (cfg, t)
    }

    #[test]
    fn energy_is_positive_and_decomposes() {
        let ops = vec![TrainingOp::gemm(
            GemmShape::new(1024, 512, 1024),
            Phase::Forward,
            "fc",
        )];
        let (cfg, t) = step(Dataflow::WeightStationary, &ops);
        let e = EnergyModel::calibrated().step_energy(&cfg, &t);
        assert!(e.total() > 0.0);
        let sum = e.engine_j + e.ppu_j + e.sram_j + e.dram_j + e.uncore_j;
        assert!((e.total() - sum).abs() < 1e-15);
        // WS has no PPU.
        assert_eq!(e.ppu_j, 0.0);
    }

    #[test]
    fn faster_engine_saves_energy_on_skinny_gemms() {
        // Per-example gradient pattern: many small-K GEMMs, ephemeral.
        let ops = vec![TrainingOp::gemm_batch_ephemeral(
            GemmShape::new(4608, 16, 512),
            32,
            Phase::BwdPerExampleGrad,
            "conv",
        )];
        let (ws_cfg, ws_t) = step(Dataflow::WeightStationary, &ops);
        let (diva_cfg, diva_t) = step(Dataflow::OuterProduct, &ops);
        let model = EnergyModel::calibrated();
        let e_ws = model.step_energy(&ws_cfg, &ws_t).total();
        let e_diva = model.step_energy(&diva_cfg, &diva_t).total();
        assert!(
            e_diva < e_ws,
            "DiVa {e_diva} J should beat WS {e_ws} J on per-example gradients"
        );
    }

    #[test]
    fn dram_energy_scales_with_traffic() {
        let small = vec![TrainingOp::gemm(
            GemmShape::new(128, 128, 128),
            Phase::Forward,
            "s",
        )];
        let big = vec![TrainingOp::gemm(
            GemmShape::new(4096, 128, 4096),
            Phase::Forward,
            "b",
        )];
        let model = EnergyModel::calibrated();
        let (cfg, ts) = step(Dataflow::WeightStationary, &small);
        let (_, tb) = step(Dataflow::WeightStationary, &big);
        let es = model.step_energy(&cfg, &ts);
        let eb = model.step_energy(&cfg, &tb);
        assert!(eb.dram_j > 10.0 * es.dram_j);
    }

    #[test]
    fn idle_energy_charged_even_with_zero_macs() {
        let ops = vec![TrainingOp::vector(
            diva_arch::VectorOpKind::GradNorm,
            1 << 20,
            4,
            false,
            Phase::BwdGradNorm,
            "norm",
        )];
        let (cfg, t) = step(Dataflow::WeightStationary, &ops);
        let e = EnergyModel::calibrated().step_energy(&cfg, &t);
        assert_eq!(t.total_macs(), 0);
        assert!(e.engine_j > 0.0); // idle fraction
        assert!(e.uncore_j > 0.0);
    }
}
