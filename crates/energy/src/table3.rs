//! Assembly of the paper's Table III: power, area, and effective
//! throughput normalized to power and area, per GEMM engine.

use diva_arch::{AcceleratorConfig, Dataflow};

use crate::synthesis::SynthesisModel;

/// One row of Table III.
#[derive(Clone, Debug, PartialEq)]
pub struct TableIiiRow {
    /// Engine dataflow.
    pub dataflow: Dataflow,
    /// Peak TFLOPS (identical across engines: same MAC count and clock).
    pub peak_tflops: f64,
    /// Effective TFLOPS measured on the DP-SGD(R) workload suite.
    pub effective_tflops: f64,
    /// Engine power in watts.
    pub power_w: f64,
    /// Engine area in mm².
    pub area_mm2: f64,
    /// Effective TFLOPS per watt.
    pub tflops_per_watt: f64,
    /// Effective TFLOPS per mm².
    pub tflops_per_mm2: f64,
}

/// Builds Table III rows from measured effective throughput per dataflow
/// (WS, OS, outer-product order). The effective numbers come from the
/// simulator; peak/power/area come from the synthesis model.
pub fn table_iii(
    config: &AcceleratorConfig,
    synthesis: &SynthesisModel,
    effective_tflops: [f64; 3],
) -> Vec<TableIiiRow> {
    let peak = config.peak_tflops();
    Dataflow::ALL
        .iter()
        .zip(effective_tflops)
        .map(|(&df, eff)| {
            // Table III's outer-product column includes the all-to-all
            // datapath; the PPU is reported separately in the text, so the
            // engine-only cost is used here (matching the 82 mm² figure).
            let cost = synthesis.engine(df, false);
            TableIiiRow {
                dataflow: df,
                peak_tflops: peak,
                effective_tflops: eff,
                power_w: cost.power_w,
                area_mm2: cost.area_mm2,
                tflops_per_watt: eff / cost.power_w,
                tflops_per_mm2: eff / cost.area_mm2,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_reproduces_paper_ratios_with_paper_inputs() {
        // Feed the paper's own effective-TFLOPS measurements (1.2 / 0.9 /
        // 6.6) and check the derived efficiency columns match Table III.
        let cfg = AcceleratorConfig::tpu_v3_like(Dataflow::OuterProduct);
        let rows = table_iii(&cfg, &SynthesisModel::calibrated(), [1.2, 0.9, 6.6]);
        assert_eq!(rows.len(), 3);
        // WS: 1.2 TFLOPS / 13.4 W = 0.089; 1.2 / 68 = 0.017.
        assert!((rows[0].tflops_per_watt - 0.089).abs() < 0.005);
        assert!((rows[0].tflops_per_mm2 - 0.017).abs() < 0.002);
        // Outer-product: 6.6 / 21.2 = 0.311; 6.6 / 82 = 0.081.
        assert!((rows[2].tflops_per_watt - 0.311).abs() < 0.01);
        assert!((rows[2].tflops_per_mm2 - 0.081).abs() < 0.005);
        // The headline: DiVa is ~3.5× better TFLOPS/W and ~4.6× TFLOPS/mm².
        assert!((rows[2].tflops_per_watt / rows[0].tflops_per_watt - 3.5).abs() < 0.3);
        assert!((rows[2].tflops_per_mm2 / rows[0].tflops_per_mm2 - 4.6).abs() < 0.5);
    }

    #[test]
    fn peak_is_shared_across_engines() {
        let cfg = AcceleratorConfig::tpu_v3_like(Dataflow::WeightStationary);
        let rows = table_iii(&cfg, &SynthesisModel::calibrated(), [1.0, 1.0, 1.0]);
        assert_eq!(rows[0].peak_tflops, rows[1].peak_tflops);
        assert_eq!(rows[1].peak_tflops, rows[2].peak_tflops);
    }
}
