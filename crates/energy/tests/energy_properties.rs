//! Property tests of the energy model: physical sanity across random
//! workloads (monotonicity, non-negativity, conservation of breakdown).
//! Cases are drawn from a seeded generator (no proptest in the approved
//! dependency set), so every run checks the same deterministic sample.

use diva_arch::{AcceleratorConfig, Dataflow, GemmShape, Phase, TrainingOp};
use diva_energy::EnergyModel;
use diva_sim::Simulator;
use diva_tensor::DivaRng;

fn simulate(
    df: Dataflow,
    shape: GemmShape,
    count: u64,
) -> (AcceleratorConfig, diva_sim::StepTiming) {
    let cfg = AcceleratorConfig::tpu_v3_like(df);
    let sim = Simulator::new(cfg.clone()).unwrap();
    let op = TrainingOp::gemm_batch(shape, count, Phase::Forward, "op");
    (cfg, sim.time_step(&[op]))
}

/// Every component of the breakdown is non-negative and they sum to the
/// total exactly.
#[test]
fn breakdown_is_consistent() {
    let model = EnergyModel::calibrated();
    let mut gen = DivaRng::seed_from_u64(0xe1);
    for _ in 0..48 {
        let (m, k, n) = (
            1 + gen.index(2047) as u64,
            1 + gen.index(2047) as u64,
            1 + gen.index(2047) as u64,
        );
        let count = 1 + gen.index(7) as u64;
        for df in Dataflow::ALL {
            let (cfg, t) = simulate(df, GemmShape::new(m, k, n), count);
            let e = model.step_energy(&cfg, &t);
            assert!(e.engine_j >= 0.0);
            assert!(e.ppu_j >= 0.0);
            assert!(e.sram_j >= 0.0);
            assert!(e.dram_j >= 0.0);
            assert!(e.uncore_j >= 0.0);
            let sum = e.engine_j + e.ppu_j + e.sram_j + e.dram_j + e.uncore_j;
            assert!((e.total() - sum).abs() <= 1e-12 * e.total().max(1.0));
        }
    }
}

/// More work (a second identical GEMM) never costs less energy.
#[test]
fn energy_monotone_in_work() {
    let model = EnergyModel::calibrated();
    let mut gen = DivaRng::seed_from_u64(0xe2);
    for _ in 0..48 {
        let shape = GemmShape::new(
            1 + gen.index(1023) as u64,
            1 + gen.index(1023) as u64,
            1 + gen.index(1023) as u64,
        );
        for df in Dataflow::ALL {
            let (cfg, t1) = simulate(df, shape, 1);
            let (_, t2) = simulate(df, shape, 2);
            let e1 = model.step_energy(&cfg, &t1).total();
            let e2 = model.step_energy(&cfg, &t2).total();
            assert!(e2 >= e1, "{df}: {e2} < {e1}");
        }
    }
}

/// Energy per MAC is bounded below by the pure dynamic MAC energy and
/// above by a sane envelope (idle + uncore can only add so much for
/// compute-dense work).
#[test]
fn energy_per_mac_is_physical() {
    let model = EnergyModel::calibrated();
    for exp in 7u32..11 {
        // square GEMMs from 128 to 1024
        let side = 1u64 << exp;
        let (cfg, t) = simulate(Dataflow::OuterProduct, GemmShape::new(side, side, side), 1);
        let e = model.step_energy(&cfg, &t);
        let per_mac_pj = e.total() / t.total_macs() as f64 * 1e12;
        // 65 nm MACs land in the ~1–100 pJ/op envelope once memory and
        // uncore are amortized over a dense GEMM.
        assert!(per_mac_pj > 0.5, "{per_mac_pj} pJ/MAC too cheap");
        assert!(per_mac_pj < 500.0, "{per_mac_pj} pJ/MAC too expensive");
    }
}

/// The PPU adds energy only when present, and its cost is small relative to
/// the engine (2.6 W vs 21.2 W).
#[test]
fn ppu_energy_is_present_and_modest() {
    let model = EnergyModel::calibrated();
    let shape = GemmShape::new(512, 64, 512);
    let mut with = AcceleratorConfig::tpu_v3_like(Dataflow::OuterProduct);
    with.has_ppu = true;
    let mut without = with.clone();
    without.has_ppu = false;
    let sim_with = Simulator::new(with.clone()).unwrap();
    let sim_without = Simulator::new(without.clone()).unwrap();
    let op = TrainingOp::gemm(shape, Phase::Forward, "op");
    let e_with = model.step_energy(&with, &sim_with.time_step(std::slice::from_ref(&op)));
    let e_without = model.step_energy(&without, &sim_without.time_step(&[op]));
    assert!(e_with.ppu_j > 0.0);
    assert_eq!(e_without.ppu_j, 0.0);
    assert!(e_with.ppu_j < e_with.engine_j);
}
