//! Validation of the analytic timing model against the register-level
//! functional simulators — this reproduction's stand-in for the paper's
//! validation of its cycle-level simulator against Google Cloud TPUv3
//! (Section V, Pearson correlation 0.95). Here we demand *exact* equality
//! of compute-cycle counts.
//!
//! Random-shape cases are drawn from a seeded generator (no proptest in the
//! approved dependency set), so every run checks the same deterministic
//! sample of the space.

use diva_arch::{AcceleratorConfig, Dataflow, GemmShape, MemoryConfig, PeArray};
use diva_pearray::{OsArray, OuterProductArray, WsArray};
use diva_sim::Simulator;
use diva_tensor::{matmul, DivaRng, Tensor};

/// Builds a small test configuration with the given dataflow and array size.
fn small_config(df: Dataflow, rows: u64, cols: u64, fill: u64, drain: u64) -> AcceleratorConfig {
    AcceleratorConfig {
        pe: PeArray::new(rows, cols),
        freq_hz: 1.0e9,
        sram_bytes: 1 << 20,
        memory: MemoryConfig::tpu_v3_like(),
        dataflow: df,
        rhs_fill_rows_per_cycle: fill,
        drain_rows_per_cycle: drain,
        has_ppu: df.is_output_stationary(),
        drain_overlap: false,
    }
}

fn random_operands(m: usize, k: usize, n: usize, seed: u64) -> (Tensor, Tensor) {
    let mut rng = DivaRng::seed_from_u64(seed);
    (
        Tensor::uniform(&[m, k], -1.0, 1.0, &mut rng),
        Tensor::uniform(&[k, n], -1.0, 1.0, &mut rng),
    )
}

#[test]
fn ws_analytic_matches_functional_exactly() {
    let shapes = [
        (5usize, 3usize, 4usize),
        (16, 8, 8),
        (1, 1, 1),
        (33, 17, 9),
        (10, 20, 30),
        (64, 2, 64),
    ];
    for &(m, k, n) in &shapes {
        let functional = WsArray::new(8, 8, 4);
        let sim = Simulator::new(small_config(Dataflow::WeightStationary, 8, 8, 4, 4)).unwrap();
        let (a, b) = random_operands(m, k, n, 42);
        let run = functional.gemm(&a, &b);
        let analytic = sim.compute_cycles(GemmShape::new(m as u64, k as u64, n as u64));
        assert_eq!(
            run.cycles, analytic,
            "WS cycle mismatch for ({m},{k},{n}): functional {} vs analytic {analytic}",
            run.cycles
        );
        assert!(run.output.max_abs_diff(&matmul(&a, &b)) < 1e-3);
    }
}

#[test]
fn os_analytic_matches_functional_exactly() {
    let shapes = [
        (5usize, 3usize, 4usize),
        (16, 8, 8),
        (9, 40, 7),
        (20, 1, 20),
        (8, 100, 8),
    ];
    for &(m, k, n) in &shapes {
        let functional = OsArray::new(8, 8, 2);
        let sim = Simulator::new(small_config(Dataflow::OutputStationary, 8, 8, 8, 2)).unwrap();
        let (a, b) = random_operands(m, k, n, 43);
        let run = functional.gemm(&a, &b);
        let analytic = sim.compute_cycles(GemmShape::new(m as u64, k as u64, n as u64));
        assert_eq!(
            run.cycles, analytic,
            "OS cycle mismatch for ({m},{k},{n}): functional {} vs analytic {analytic}",
            run.cycles
        );
        assert!(run.output.max_abs_diff(&matmul(&a, &b)) < 1e-3);
    }
}

#[test]
fn outer_product_analytic_matches_functional_exactly() {
    let shapes = [
        (5usize, 3usize, 4usize),
        (16, 1, 16),
        (9, 64, 7),
        (32, 5, 12),
    ];
    for &(m, k, n) in &shapes {
        let functional = OuterProductArray::new(8, 8, 4);
        let sim = Simulator::new(small_config(Dataflow::OuterProduct, 8, 8, 8, 4)).unwrap();
        let (a, b) = random_operands(m, k, n, 44);
        let run = functional.gemm(&a, &b);
        let analytic = sim.compute_cycles(GemmShape::new(m as u64, k as u64, n as u64));
        assert_eq!(
            run.cycles, analytic,
            "OP cycle mismatch for ({m},{k},{n}): functional {} vs analytic {analytic}",
            run.cycles
        );
        assert!(run.output.max_abs_diff(&matmul(&a, &b)) < 1e-3);
    }
}

/// Property: for random shapes, every dataflow's analytic compute-cycle
/// model agrees exactly with the functional register-level simulation, and
/// all engines compute the same (correct) product.
#[test]
fn all_dataflows_agree_with_functional() {
    let mut gen = DivaRng::seed_from_u64(0x5157);
    for case in 0..48 {
        let (m, k, n) = (1 + gen.index(23), 1 + gen.index(23), 1 + gen.index(23));
        let (a, b) = random_operands(m, k, n, 4000 + case);
        let reference = matmul(&a, &b);
        let shape = GemmShape::new(m as u64, k as u64, n as u64);

        let ws = WsArray::new(4, 4, 2).gemm(&a, &b);
        let ws_sim = Simulator::new(small_config(Dataflow::WeightStationary, 4, 4, 2, 2)).unwrap();
        assert_eq!(ws.cycles, ws_sim.compute_cycles(shape));
        assert!(ws.output.max_abs_diff(&reference) < 1e-3);

        let os = OsArray::new(4, 4, 2).gemm(&a, &b);
        let os_sim = Simulator::new(small_config(Dataflow::OutputStationary, 4, 4, 2, 2)).unwrap();
        assert_eq!(os.cycles, os_sim.compute_cycles(shape));
        assert!(os.output.max_abs_diff(&reference) < 1e-3);

        let op = OuterProductArray::new(4, 4, 2).gemm(&a, &b);
        let op_sim = Simulator::new(small_config(Dataflow::OuterProduct, 4, 4, 2, 2)).unwrap();
        assert_eq!(op.cycles, op_sim.compute_cycles(shape));
        assert!(op.output.max_abs_diff(&reference) < 1e-3);
    }
}

/// Property: utilization stays in (0, 1] for non-empty GEMMs.
#[test]
fn utilization_is_bounded() {
    let mut gen = DivaRng::seed_from_u64(0x0711);
    for _ in 0..48 {
        let (m, k, n) = (
            1 + gen.index(599) as u64,
            1 + gen.index(599) as u64,
            1 + gen.index(599) as u64,
        );
        for df in Dataflow::ALL {
            let sim = Simulator::new(AcceleratorConfig::tpu_v3_like(df)).unwrap();
            let t = sim.gemm_timing(GemmShape::new(m, k, n), 1, true);
            assert!(t.utilization > 0.0);
            assert!(t.utilization <= 1.0 + 1e-12, "({m},{k},{n}) {df}");
        }
    }
}
