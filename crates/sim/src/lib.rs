//! Analytic cycle-level performance models for the three GEMM-engine
//! dataflows, the memory system, and DP-SGD's gradient post-processing —
//! the fast counterpart of the register-level simulators in `diva-pearray`.
//!
//! The compute-cycle formulas here are required (by cross-crate tests) to
//! agree *exactly* with the functional simulations: this is the
//! reproduction's stand-in for the paper's validation of its simulator
//! against Google Cloud TPUv3 (Pearson 0.95, Section V).
//!
//! The model follows the paper's structure:
//!
//! * **GEMM engines** (Section II-D, IV-B): tile-by-tile cycle counts for
//!   WS/OS/outer-product dataflows, including weight-fill, pipeline skew
//!   through the physical array, and output drain.
//! * **Memory system** (Table II): DRAM traffic derived from a tiled reuse
//!   model over the 16 MB SRAM; transfer time overlaps compute
//!   (double-buffering), so each op costs `max(compute, memory) + latency`.
//! * **Post-processing** (Section III-C, IV-C): gradient norm / clip /
//!   reduce / noise as bandwidth-bound vector ops, or fused into the
//!   output drain when an output-stationary engine has a PPU.
//!
//! # Example
//!
//! ```
//! use diva_arch::{AcceleratorConfig, Dataflow, GemmShape};
//! use diva_sim::Simulator;
//!
//! let ws = Simulator::new(AcceleratorConfig::tpu_v3_like(Dataflow::WeightStationary)).unwrap();
//! let diva = Simulator::new(AcceleratorConfig::tpu_v3_like(Dataflow::OuterProduct)).unwrap();
//! // A skinny per-example-gradient GEMM: K = 1.
//! let shape = GemmShape::new(1024, 1, 1024);
//! let ws_t = ws.gemm_timing(shape, 1, true);
//! let diva_t = diva.gemm_timing(shape, 1, true);
//! assert!(diva_t.utilization > ws_t.utilization);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gemm_timing;
mod roofline;
mod simulator;
mod step;
mod tiles;
mod vector_timing;

pub use gemm_timing::GemmTiming;
pub use roofline::{ridge_intensity, roofline, Bound, RooflinePoint};
pub use simulator::Simulator;
pub use step::{OpTiming, PhaseBreakdown, StepTiming};
pub use tiles::tile_sizes;
pub use vector_timing::VectorTiming;
