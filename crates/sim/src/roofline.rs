//! Roofline analysis of simulated GEMMs: classifies each op as compute- or
//! memory-bound and reports its position against the machine's ridge point.
//!
//! This is the analytical backdrop of the paper's Section III-C: the
//! per-example gradient GEMMs sit far left of the ridge (low arithmetic
//! intensity) when their outputs must travel to DRAM, while DiVa's PPU
//! fusion moves them off the memory roof entirely.

use diva_arch::{AcceleratorConfig, GemmShape};

use crate::gemm_timing;

/// Which resource bounds an op.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Bound {
    /// Limited by MAC throughput (compute pipeline).
    Compute,
    /// Limited by off-chip bandwidth.
    Memory,
}

/// One point on the roofline plot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RooflinePoint {
    /// Arithmetic intensity: useful MACs per DRAM byte moved. `f64::INFINITY`
    /// when the op produces no DRAM traffic (fully fused).
    pub intensity: f64,
    /// Achieved performance in MACs per cycle.
    pub macs_per_cycle: f64,
    /// Achievable ceiling at this intensity, MACs per cycle.
    pub ceiling: f64,
    /// The binding resource.
    pub bound: Bound,
}

/// The machine's ridge point: the arithmetic intensity (MACs/byte) above
/// which the array is compute-bound.
pub fn ridge_intensity(config: &AcceleratorConfig) -> f64 {
    let peak_macs_per_cycle = config.pe.macs() as f64;
    let bytes_per_cycle = config.memory.bytes_per_cycle(config.freq_hz);
    peak_macs_per_cycle / bytes_per_cycle
}

/// Places one batched GEMM on the roofline.
pub fn roofline(
    config: &AcceleratorConfig,
    shape: GemmShape,
    count: u64,
    write_output: bool,
) -> RooflinePoint {
    let t = gemm_timing::gemm_timing(config, shape, count, write_output);
    let bytes = (t.dram_read_bytes + t.dram_write_bytes) as f64;
    let macs = t.macs as f64;
    let intensity = if bytes == 0.0 {
        f64::INFINITY
    } else {
        macs / bytes
    };
    let peak = config.pe.macs() as f64;
    let bw = config.memory.bytes_per_cycle(config.freq_hz);
    let ceiling = if intensity.is_infinite() {
        peak
    } else {
        peak.min(intensity * bw)
    };
    let macs_per_cycle = if t.total_cycles == 0 {
        0.0
    } else {
        macs / t.total_cycles as f64
    };
    let bound = if t.memory_cycles > t.compute_cycles {
        Bound::Memory
    } else {
        Bound::Compute
    };
    RooflinePoint {
        intensity,
        macs_per_cycle,
        ceiling,
        bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_arch::Dataflow;

    fn cfg(df: Dataflow) -> AcceleratorConfig {
        AcceleratorConfig::tpu_v3_like(df)
    }

    #[test]
    fn ridge_is_about_34_macs_per_byte() {
        // 16384 MACs/cycle over ~478.7 B/cycle ≈ 34.2 MACs/byte.
        let r = ridge_intensity(&cfg(Dataflow::WeightStationary));
        assert!((r - 34.2).abs() < 0.5, "{r}");
    }

    #[test]
    fn big_square_gemm_is_compute_bound() {
        let p = roofline(
            &cfg(Dataflow::OuterProduct),
            GemmShape::new(4096, 4096, 4096),
            1,
            true,
        );
        assert_eq!(p.bound, Bound::Compute);
        assert!(p.intensity > ridge_intensity(&cfg(Dataflow::OuterProduct)));
    }

    #[test]
    fn spilled_outer_product_tile_is_memory_bound() {
        // K = 1 with output write-back: almost no MACs, lots of bytes.
        let p = roofline(
            &cfg(Dataflow::OuterProduct),
            GemmShape::new(128, 1, 128),
            1,
            true,
        );
        assert_eq!(p.bound, Bound::Memory);
        assert!(p.intensity < ridge_intensity(&cfg(Dataflow::OuterProduct)));
    }

    #[test]
    fn fused_gemm_reports_infinite_intensity() {
        // Small ephemeral tile on a PPU engine: zero DRAM traffic... note
        // inputs still stream from DRAM in our model, so use a shape whose
        // inputs are negligible but output dominates to see the contrast.
        let with = roofline(
            &cfg(Dataflow::OuterProduct),
            GemmShape::new(4608, 16, 512),
            1,
            false,
        );
        let without = roofline(
            &cfg(Dataflow::OuterProduct),
            GemmShape::new(4608, 16, 512),
            1,
            true,
        );
        assert!(with.intensity > without.intensity);
        assert!(with.macs_per_cycle >= without.macs_per_cycle);
    }

    #[test]
    fn achieved_performance_never_exceeds_ceiling() {
        for df in Dataflow::ALL {
            for shape in [
                GemmShape::new(128, 128, 128),
                GemmShape::new(768, 1, 768),
                GemmShape::new(4608, 16, 512),
            ] {
                let p = roofline(&cfg(df), shape, 4, true);
                assert!(
                    p.macs_per_cycle <= p.ceiling * 1.0 + 1e-9,
                    "{df}: {shape} achieved {} > ceiling {}",
                    p.macs_per_cycle,
                    p.ceiling
                );
            }
        }
    }
}
