//! Per-op and per-training-step timing aggregation, grouped by the paper's
//! phase taxonomy (Figures 5 and 14 stacked bars).

use std::collections::BTreeMap;

use diva_arch::Phase;

/// Timing of one lowered training op.
#[derive(Clone, Debug, PartialEq)]
pub struct OpTiming {
    /// Reporting phase.
    pub phase: Phase,
    /// Originating label (layer name).
    pub label: String,
    /// End-to-end cycles.
    pub cycles: u64,
    /// Useful MACs (0 for vector ops).
    pub macs: u64,
    /// DRAM bytes read.
    pub dram_read_bytes: u64,
    /// DRAM bytes written.
    pub dram_write_bytes: u64,
    /// SRAM bytes moved (operand streaming + output drain).
    pub sram_bytes: u64,
    /// FLOPS utilization over this op's window (0 for vector ops).
    pub utilization: f64,
}

/// Aggregate timing of one phase.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Total cycles in the phase.
    pub cycles: u64,
    /// Total MACs.
    pub macs: u64,
    /// Total DRAM traffic (read + write).
    pub dram_bytes: u64,
    /// Total SRAM traffic.
    pub sram_bytes: u64,
}

/// Timing of a full training step (all lowered ops executed in order).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StepTiming {
    /// Per-op detail, in execution order.
    pub ops: Vec<OpTiming>,
    /// Aggregates keyed by phase.
    pub phases: BTreeMap<Phase, PhaseBreakdown>,
}

impl StepTiming {
    /// Builds a step timing from per-op results.
    pub fn from_ops(ops: Vec<OpTiming>) -> Self {
        let mut phases: BTreeMap<Phase, PhaseBreakdown> = BTreeMap::new();
        for op in &ops {
            let entry = phases.entry(op.phase).or_default();
            entry.cycles += op.cycles;
            entry.macs += op.macs;
            entry.dram_bytes += op.dram_read_bytes + op.dram_write_bytes;
            entry.sram_bytes += op.sram_bytes;
        }
        Self { ops, phases }
    }

    /// Total cycles for the step.
    pub fn total_cycles(&self) -> u64 {
        self.ops.iter().map(|o| o.cycles).sum()
    }

    /// Total DRAM traffic in bytes.
    pub fn total_dram_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|o| o.dram_read_bytes + o.dram_write_bytes)
            .sum()
    }

    /// Total SRAM traffic in bytes.
    pub fn total_sram_bytes(&self) -> u64 {
        self.ops.iter().map(|o| o.sram_bytes).sum()
    }

    /// Total useful MACs.
    pub fn total_macs(&self) -> u64 {
        self.ops.iter().map(|o| o.macs).sum()
    }

    /// Cycles attributed to one phase (0 if the phase never occurs).
    pub fn phase_cycles(&self, phase: Phase) -> u64 {
        self.phases.get(&phase).map_or(0, |p| p.cycles)
    }

    /// DRAM bytes attributed to one phase.
    pub fn phase_dram_bytes(&self, phase: Phase) -> u64 {
        self.phases.get(&phase).map_or(0, |p| p.dram_bytes)
    }

    /// Whole-step FLOPS utilization: useful MACs over the MAC capacity of
    /// the full step window (the paper's Figure 7 metric).
    pub fn flops_utilization(&self, pe_macs: u64) -> f64 {
        let cycles = self.total_cycles();
        if cycles == 0 {
            return 0.0;
        }
        self.total_macs() as f64 / (cycles as f64 * pe_macs as f64)
    }

    /// FLOPS utilization restricted to the ops of one phase.
    pub fn phase_utilization(&self, phase: Phase, pe_macs: u64) -> f64 {
        let p = match self.phases.get(&phase) {
            Some(p) => p,
            None => return 0.0,
        };
        if p.cycles == 0 {
            return 0.0;
        }
        p.macs as f64 / (p.cycles as f64 * pe_macs as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(phase: Phase, cycles: u64, macs: u64, read: u64, write: u64) -> OpTiming {
        OpTiming {
            phase,
            label: "t".into(),
            cycles,
            macs,
            dram_read_bytes: read,
            dram_write_bytes: write,
            sram_bytes: read + write,
            utilization: 0.0,
        }
    }

    #[test]
    fn aggregation_sums_per_phase() {
        let s = StepTiming::from_ops(vec![
            op(Phase::Forward, 10, 100, 5, 5),
            op(Phase::Forward, 20, 200, 5, 5),
            op(Phase::BwdGradNorm, 30, 0, 50, 0),
        ]);
        assert_eq!(s.total_cycles(), 60);
        assert_eq!(s.phase_cycles(Phase::Forward), 30);
        assert_eq!(s.phase_cycles(Phase::BwdGradNorm), 30);
        assert_eq!(s.phase_dram_bytes(Phase::Forward), 20);
        assert_eq!(s.total_macs(), 300);
    }

    #[test]
    fn missing_phase_reports_zero() {
        let s = StepTiming::from_ops(vec![op(Phase::Forward, 1, 1, 0, 0)]);
        assert_eq!(s.phase_cycles(Phase::BwdGradClip), 0);
    }

    #[test]
    fn utilization_uses_total_window() {
        let s = StepTiming::from_ops(vec![
            op(Phase::Forward, 10, 1000, 0, 0),
            op(Phase::BwdGradNorm, 10, 0, 0, 0),
        ]);
        // 1000 MACs over 20 cycles of a 100-MAC array → 0.5.
        assert!((s.flops_utilization(100) - 0.5).abs() < 1e-12);
        assert!((s.phase_utilization(Phase::Forward, 100) - 1.0).abs() < 1e-12);
    }
}
