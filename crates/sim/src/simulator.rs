//! The top-level analytic simulator: times individual ops and whole lowered
//! training steps on a configured accelerator.

use diva_arch::{AcceleratorConfig, ConfigError, GemmShape, TrainingOp, TrainingOpKind};

use crate::gemm_timing::{self, GemmTiming};
use crate::step::{OpTiming, StepTiming};
use crate::vector_timing::{self, VectorTiming};

/// Analytic cycle-level simulator for one accelerator configuration.
///
/// # Example
///
/// ```
/// use diva_arch::{AcceleratorConfig, Dataflow, GemmShape};
/// use diva_sim::Simulator;
///
/// let sim = Simulator::new(AcceleratorConfig::tpu_v3_like(Dataflow::OuterProduct)).unwrap();
/// let t = sim.gemm_timing(GemmShape::new(128, 64, 128), 1, true);
/// assert_eq!(t.compute_cycles, 64 + 16); // K cycles + 128/R drain
/// ```
#[derive(Clone, Debug)]
pub struct Simulator {
    config: AcceleratorConfig,
}

impl Simulator {
    /// Creates a simulator after validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`ConfigError`] if the configuration is
    /// inconsistent.
    pub fn new(config: AcceleratorConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The simulated configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Pure compute-pipeline cycles for one GEMM (no memory effects) —
    /// guaranteed to match the functional `diva-pearray` simulators.
    pub fn compute_cycles(&self, shape: GemmShape) -> u64 {
        gemm_timing::compute_cycles(&self.config, shape)
    }

    /// Full timing for a batched GEMM. `write_output` is false only when an
    /// output-stationary engine streams results into the PPU.
    pub fn gemm_timing(&self, shape: GemmShape, count: u64, write_output: bool) -> GemmTiming {
        gemm_timing::gemm_timing(&self.config, shape, count, write_output)
    }

    /// Timing for a post-processing vector op.
    pub fn vector_timing(
        &self,
        kind: diva_arch::VectorOpKind,
        read_bytes: u64,
        write_bytes: u64,
        fusable: bool,
    ) -> VectorTiming {
        vector_timing::vector_timing(&self.config, kind, read_bytes, write_bytes, fusable)
    }

    /// Whether this configuration can consume per-example gradients
    /// on-the-fly (output-stationary dataflow with a PPU attached).
    pub fn can_fuse_postprocessing(&self) -> bool {
        self.config.has_ppu && self.config.dataflow.is_output_stationary()
    }

    /// Times one lowered training op.
    pub fn time_op(&self, op: &TrainingOp) -> OpTiming {
        match &op.kind {
            TrainingOpKind::Gemm {
                shape,
                count,
                output_persists,
            } => {
                // An ephemeral output (DP-SGD(R) per-example gradients) can
                // skip the DRAM write-back only on a PPU-equipped
                // output-stationary engine; everyone else must spill it
                // (paper Figure 10).
                let write_output = *output_persists || !self.can_fuse_postprocessing();
                let t = self.gemm_timing(*shape, *count, write_output);
                OpTiming {
                    phase: op.phase,
                    label: op.label.clone(),
                    cycles: t.total_cycles,
                    macs: t.macs,
                    dram_read_bytes: t.dram_read_bytes,
                    dram_write_bytes: t.dram_write_bytes,
                    sram_bytes: t.sram_read_bytes + t.sram_write_bytes,
                    utilization: t.utilization,
                }
            }
            TrainingOpKind::Vector {
                kind,
                read_bytes,
                write_bytes,
                fusable_into_drain,
            } => {
                let t = self.vector_timing(*kind, *read_bytes, *write_bytes, *fusable_into_drain);
                OpTiming {
                    phase: op.phase,
                    label: op.label.clone(),
                    cycles: t.total_cycles,
                    macs: 0,
                    dram_read_bytes: t.dram_read_bytes,
                    dram_write_bytes: t.dram_write_bytes,
                    sram_bytes: t.sram_bytes,
                    utilization: 0.0,
                }
            }
        }
    }

    /// Times a whole lowered training step (ops execute back-to-back).
    pub fn time_step(&self, ops: &[TrainingOp]) -> StepTiming {
        StepTiming::from_ops(ops.iter().map(|op| self.time_op(op)).collect())
    }

    /// Converts cycles to wall-clock seconds at the configured frequency.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        self.config.cycles_to_seconds(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_arch::{Dataflow, Phase, VectorOpKind};

    fn sim(df: Dataflow) -> Simulator {
        Simulator::new(AcceleratorConfig::tpu_v3_like(df)).unwrap()
    }

    #[test]
    fn ephemeral_gemm_skips_write_only_with_ppu() {
        let shape = GemmShape::new(4608, 16, 512);
        let op = TrainingOp::gemm_batch_ephemeral(shape, 4, Phase::BwdPerExampleGrad, "conv");
        let diva = sim(Dataflow::OuterProduct).time_op(&op);
        let ws = sim(Dataflow::WeightStationary).time_op(&op);
        assert_eq!(diva.dram_write_bytes, 0);
        assert!(ws.dram_write_bytes > 0);
    }

    #[test]
    fn persistent_gemm_always_writes() {
        let shape = GemmShape::new(4608, 16, 512);
        let op = TrainingOp::gemm_batch(shape, 4, Phase::BwdPerExampleGrad, "conv");
        let diva = sim(Dataflow::OuterProduct).time_op(&op);
        assert!(diva.dram_write_bytes > 0);
    }

    #[test]
    fn step_accumulates_all_ops() {
        let s = sim(Dataflow::WeightStationary);
        let ops = vec![
            TrainingOp::gemm(GemmShape::new(256, 128, 256), Phase::Forward, "fc1"),
            TrainingOp::vector(
                VectorOpKind::GradNorm,
                1 << 20,
                64,
                true,
                Phase::BwdGradNorm,
                "norm",
            ),
        ];
        let t = s.time_step(&ops);
        assert_eq!(t.ops.len(), 2);
        assert!(t.phase_cycles(Phase::Forward) > 0);
        assert!(t.phase_cycles(Phase::BwdGradNorm) > 0);
    }

    #[test]
    fn diva_fuses_the_norm_ws_does_not() {
        let norm = TrainingOp::vector(
            VectorOpKind::GradNorm,
            256 << 20,
            1024,
            true,
            Phase::BwdGradNorm,
            "norm",
        );
        let diva = sim(Dataflow::OuterProduct).time_op(&norm);
        let ws = sim(Dataflow::WeightStationary).time_op(&norm);
        assert_eq!(diva.cycles, 0);
        assert!(ws.cycles > 100_000); // hundreds of MB at ~479 B/cycle
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut bad = AcceleratorConfig::tpu_v3_like(Dataflow::WeightStationary);
        bad.freq_hz = -1.0;
        assert!(Simulator::new(bad).is_err());
    }
}
