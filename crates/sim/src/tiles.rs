//! Tiling helpers shared by the analytic models.

/// Splits `total` into tile sizes of at most `tile`, in execution order
/// (full tiles first, then the remainder).
///
/// # Panics
///
/// Panics if `tile == 0`.
///
/// # Example
///
/// ```
/// use diva_sim::tile_sizes;
/// assert_eq!(tile_sizes(300, 128), vec![128, 128, 44]);
/// assert_eq!(tile_sizes(128, 128), vec![128]);
/// assert_eq!(tile_sizes(0, 128), Vec::<u64>::new());
/// ```
pub fn tile_sizes(total: u64, tile: u64) -> Vec<u64> {
    assert!(tile > 0, "tile size must be positive");
    let mut out = Vec::with_capacity(total.div_ceil(tile) as usize);
    let mut remaining = total;
    while remaining > 0 {
        let t = remaining.min(tile);
        out.push(t);
        remaining -= t;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division_has_uniform_tiles() {
        assert_eq!(tile_sizes(256, 64), vec![64, 64, 64, 64]);
    }

    #[test]
    fn remainder_is_last() {
        assert_eq!(tile_sizes(10, 4), vec![4, 4, 2]);
    }

    #[test]
    fn small_total_is_one_tile() {
        assert_eq!(tile_sizes(3, 128), vec![3]);
    }

    #[test]
    fn tiles_sum_to_total() {
        for total in [0u64, 1, 127, 128, 129, 1000] {
            assert_eq!(tile_sizes(total, 128).iter().sum::<u64>(), total);
        }
    }
}
