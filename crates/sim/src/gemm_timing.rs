//! Analytic GEMM timing per dataflow: compute cycles (exactly matching the
//! functional simulators in `diva-pearray`), DRAM traffic from a tiled
//! SRAM-reuse model, and the compute/memory overlap.

use diva_arch::{AcceleratorConfig, Dataflow, GemmShape};

use crate::tiles::tile_sizes;

/// Byte sizes per the paper's Table I: BF16 inputs, FP32 outputs.
const IN_BYTES: u64 = 2;
const OUT_BYTES: u64 = 4;

/// Timing of one (possibly batched) GEMM on a modeled engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GemmTiming {
    /// Pure compute-pipeline cycles (fill + stream + drain), all batch
    /// instances summed. Matches the functional simulators exactly.
    pub compute_cycles: u64,
    /// DRAM bytes read (LHS + RHS + any output re-reads).
    pub dram_read_bytes: u64,
    /// DRAM bytes written (outputs, including partial-sum spills).
    pub dram_write_bytes: u64,
    /// On-chip SRAM bytes read (operand streaming into the PE array).
    pub sram_read_bytes: u64,
    /// On-chip SRAM bytes written (outputs drained from the PE array).
    pub sram_write_bytes: u64,
    /// Cycles the memory system needs for the traffic above.
    pub memory_cycles: u64,
    /// End-to-end cycles: `max(compute, memory) + access latency`.
    pub total_cycles: u64,
    /// Useful MACs performed.
    pub macs: u64,
    /// Effective FLOPS utilization against peak over `total_cycles`.
    pub utilization: f64,
}

impl GemmTiming {
    /// Effective throughput in TFLOPS at the given clock.
    pub fn effective_tflops(&self, freq_hz: f64) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        let seconds = self.total_cycles as f64 / freq_hz;
        2.0 * self.macs as f64 / seconds / 1e12
    }
}

/// Computes pure compute-pipeline cycles for ONE GEMM instance on the given
/// configuration. Exactly mirrors `diva-pearray`'s tiled execution:
///
/// * **WS**: for each (K-tile, N-tile) weight tile:
///   `ceil(K_t / fill_rate) + (M + PE_H + PE_W − 2)`.
/// * **OS**: for each (M-tile, N-tile) output tile:
///   `(K + PE_H + PE_W − 2) + ceil(M_t / R)`.
/// * **Outer-product**: for each (M-tile, N-tile) output tile:
///   `K + ceil(M_t / R)`.
///
/// With `config.drain_overlap` (an analytic-only ablation: shadow
/// accumulator latches), the drain of tile *i* overlaps the compute of tile
/// *i+1*: `compute₁ + Σᵢ max(computeᵢ, drainᵢ₋₁) + drain_last`.
pub fn compute_cycles(config: &AcceleratorConfig, shape: GemmShape) -> u64 {
    if shape.is_empty() {
        return 0;
    }
    let (rows, cols) = (config.pe.rows, config.pe.cols);
    match config.dataflow {
        Dataflow::WeightStationary => {
            let stream = shape.m + rows + cols - 2;
            let n_tiles = shape.n.div_ceil(cols);
            tile_sizes(shape.k, rows)
                .iter()
                .map(|kt| (kt.div_ceil(config.rhs_fill_rows_per_cycle) + stream) * n_tiles)
                .sum()
        }
        Dataflow::OutputStationary => {
            let stream = shape.k + rows + cols - 2;
            output_stationary_cycles(config, shape, |_| stream)
        }
        Dataflow::OuterProduct => output_stationary_cycles(config, shape, |_| shape.k),
    }
}

/// Shared tile scheduler for the two output-stationary dataflows:
/// `compute_of(m_t)` gives the streaming cycles of one output tile.
fn output_stationary_cycles(
    config: &AcceleratorConfig,
    shape: GemmShape,
    compute_of: impl Fn(u64) -> u64,
) -> u64 {
    let (rows, cols) = (config.pe.rows, config.pe.cols);
    let n_tiles = shape.n.div_ceil(cols);
    // Tiles in execution order: M outer, N inner (N tiles share M_t).
    let tiles: Vec<(u64, u64)> = tile_sizes(shape.m, rows)
        .iter()
        .flat_map(|&mt| {
            let drain = mt.div_ceil(config.drain_rows_per_cycle);
            std::iter::repeat_n((compute_of(mt), drain), n_tiles as usize)
        })
        .collect();
    if !config.drain_overlap {
        return tiles.iter().map(|(c, d)| c + d).sum();
    }
    // Shadow accumulators: tile i+1 computes while tile i drains.
    let mut cycles = 0u64;
    let mut prev_drain = 0u64;
    for &(compute, drain) in &tiles {
        cycles += compute.max(prev_drain);
        prev_drain = drain;
    }
    cycles + prev_drain
}

/// DRAM traffic for ONE GEMM instance under a tiled SRAM-reuse model.
///
/// Returns `(read_bytes, write_bytes)`. `write_output` controls whether the
/// product is written back at all (false when an output-stationary engine
/// streams it straight into the PPU).
pub fn dram_traffic(
    config: &AcceleratorConfig,
    shape: GemmShape,
    write_output: bool,
) -> (u64, u64) {
    if shape.is_empty() {
        return (0, 0);
    }
    let (rows, cols) = (config.pe.rows, config.pe.cols);
    let lhs = shape.lhs_elems() * IN_BYTES;
    let rhs = shape.rhs_elems() * IN_BYTES;
    let out = shape.out_elems() * OUT_BYTES;
    // Half the SRAM per resident operand: the other half double-buffers the
    // streaming operand.
    let resident_budget = config.sram_bytes / 2;

    match config.dataflow {
        Dataflow::WeightStationary => {
            // Loop order: K-tiles outer, N-tiles inner (weights latched per
            // tile). The LHS K-stripe (M × K_t) is reused across the inner N
            // loop if it fits on-chip, else it is re-streamed per N-tile.
            let n_tiles = shape.n.div_ceil(cols);
            let k_tiles = shape.k.div_ceil(rows);
            let lhs_stripe = shape.m * rows.min(shape.k) * IN_BYTES;
            let lhs_reads = if lhs_stripe <= resident_budget {
                lhs
            } else {
                lhs * n_tiles
            };
            // Each weight tile is latched exactly once.
            let rhs_reads = rhs;
            // Partial sums accumulate across K-tiles. If the output fits
            // on-chip it is written once at the end; otherwise every K pass
            // spills partials and all but the first pass re-reads them.
            let (out_reads, out_writes) = if out <= resident_budget {
                (0, if write_output { out } else { 0 })
            } else {
                (out * (k_tiles - 1), out * k_tiles)
            };
            (lhs_reads + rhs_reads + out_reads, out_writes)
        }
        Dataflow::OutputStationary | Dataflow::OuterProduct => {
            // Loop order: M-tiles outer, N-tiles inner. The LHS M-stripe
            // (M_t × K) is reused across the inner loop; the RHS is
            // re-streamed per M-tile unless it fits on-chip.
            let m_tiles = shape.m.div_ceil(rows);
            let lhs_reads = lhs;
            let rhs_reads = if rhs <= resident_budget {
                rhs
            } else {
                rhs * m_tiles
            };
            let out_writes = if write_output { out } else { 0 };
            (lhs_reads + rhs_reads, out_writes)
        }
    }
}

/// On-chip SRAM traffic for ONE GEMM instance: operand streams into the PE
/// array and output drains out of it, per tile pass.
///
/// Returns `(read_bytes, write_bytes)`. Unlike DRAM traffic this counts
/// every re-stream (tiles re-read operands from SRAM even when DRAM reuse
/// avoids refetching them off-chip).
pub fn sram_traffic(
    config: &AcceleratorConfig,
    shape: GemmShape,
    drain_output: bool,
) -> (u64, u64) {
    if shape.is_empty() {
        return (0, 0);
    }
    let (rows, cols) = (config.pe.rows, config.pe.cols);
    match config.dataflow {
        Dataflow::WeightStationary => {
            // Per weight tile: the K-stripe of the LHS streams in and the
            // weight tile is latched; each K pass rewrites output partials.
            let n_tiles = shape.n.div_ceil(cols);
            let k_tiles = shape.k.div_ceil(rows);
            let lhs_stream = shape.lhs_elems() * IN_BYTES * n_tiles;
            let rhs_fill = shape.rhs_elems() * IN_BYTES;
            let out_writes = shape.out_elems() * OUT_BYTES * k_tiles;
            let out_rereads = shape.out_elems() * OUT_BYTES * (k_tiles - 1);
            (lhs_stream + rhs_fill + out_rereads, out_writes)
        }
        Dataflow::OutputStationary | Dataflow::OuterProduct => {
            // Per output tile: the LHS stripe streams once, the RHS stripe
            // streams once per M tile; the output drains exactly once.
            let m_tiles = shape.m.div_ceil(rows);
            let lhs_stream = shape.lhs_elems() * IN_BYTES;
            let rhs_stream = shape.rhs_elems() * IN_BYTES * m_tiles;
            let out_writes = if drain_output {
                shape.out_elems() * OUT_BYTES
            } else {
                0 // drained straight into the PPU
            };
            (lhs_stream + rhs_stream, out_writes)
        }
    }
}

/// Assembles the full [`GemmTiming`] for a batched GEMM (`count` identical,
/// independent instances — the per-example weight-gradient pattern).
pub fn gemm_timing(
    config: &AcceleratorConfig,
    shape: GemmShape,
    count: u64,
    write_output: bool,
) -> GemmTiming {
    let compute = compute_cycles(config, shape) * count;
    let (read1, write1) = dram_traffic(config, shape, write_output);
    let (read, write) = (read1 * count, write1 * count);
    let (sram_read1, sram_write1) = sram_traffic(config, shape, write_output);
    let (sram_read, sram_write) = (sram_read1 * count, sram_write1 * count);
    let bpc = config.memory.bytes_per_cycle(config.freq_hz);
    let memory_cycles = ((read + write) as f64 / bpc).ceil() as u64;
    let total = compute.max(memory_cycles)
        + if compute == 0 && memory_cycles == 0 {
            0
        } else {
            config.memory.access_latency_cycles
        };
    let macs = shape.macs() * count;
    let utilization = if total == 0 {
        0.0
    } else {
        macs as f64 / (total as f64 * config.pe.macs() as f64)
    };
    GemmTiming {
        compute_cycles: compute,
        dram_read_bytes: read,
        dram_write_bytes: write,
        sram_read_bytes: sram_read,
        sram_write_bytes: sram_write,
        memory_cycles,
        total_cycles: total,
        macs,
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(df: Dataflow) -> AcceleratorConfig {
        AcceleratorConfig::tpu_v3_like(df)
    }

    #[test]
    fn ws_cycles_formula() {
        let c = cfg(Dataflow::WeightStationary);
        // One weight tile, K=64 → fill 8 cycles, stream M+254.
        let t = compute_cycles(&c, GemmShape::new(100, 64, 128));
        assert_eq!(t, 8 + 100 + 254);
        // Two N tiles double it.
        let t2 = compute_cycles(&c, GemmShape::new(100, 64, 129));
        assert_eq!(t2, 2 * (8 + 100 + 254));
    }

    #[test]
    fn os_cycles_formula() {
        let c = cfg(Dataflow::OutputStationary);
        let t = compute_cycles(&c, GemmShape::new(128, 64, 128));
        assert_eq!(t, 64 + 254 + 16);
    }

    #[test]
    fn outer_product_cycles_are_k_plus_drain() {
        let c = cfg(Dataflow::OuterProduct);
        let t = compute_cycles(&c, GemmShape::new(128, 64, 128));
        assert_eq!(t, 64 + 16);
        // K-independence: a K=1 tile still costs only 1 + drain.
        let t1 = compute_cycles(&c, GemmShape::new(128, 1, 128));
        assert_eq!(t1, 1 + 16);
    }

    #[test]
    fn outer_product_dominates_ws_on_small_k() {
        // Compare engine efficiency in isolation (ephemeral outputs, as in
        // DP-SGD(R) norm fusion): with the output write-back suppressed the
        // small-K pathology is purely a dataflow property.
        let shape = GemmShape::new(1024, 4, 512);
        let ws = gemm_timing(&cfg(Dataflow::WeightStationary), shape, 1, false);
        let op = gemm_timing(&cfg(Dataflow::OuterProduct), shape, 1, false);
        assert!(
            op.utilization > 3.0 * ws.utilization,
            "OP {} vs WS {}",
            op.utilization,
            ws.utilization
        );
        // With persistent outputs both engines become write-bandwidth bound
        // (the vanilla DP-SGD situation, paper Section III-C).
        let ws_w = gemm_timing(&cfg(Dataflow::WeightStationary), shape, 1, true);
        let op_w = gemm_timing(&cfg(Dataflow::OuterProduct), shape, 1, true);
        assert!(op_w.memory_cycles >= op_w.compute_cycles);
        assert!(op_w.utilization < 2.0 * ws_w.utilization);
    }

    #[test]
    fn suppressing_output_removes_write_traffic() {
        let shape = GemmShape::new(4608, 16, 512);
        let c = cfg(Dataflow::OuterProduct);
        let with = gemm_timing(&c, shape, 1, true);
        let without = gemm_timing(&c, shape, 1, false);
        assert_eq!(without.dram_write_bytes, 0);
        assert!(with.dram_write_bytes > 0);
        assert!(without.total_cycles <= with.total_cycles);
    }

    #[test]
    fn large_outputs_spill_partials_under_ws() {
        // Output (16Ki x 16Ki x 4B = 1 GiB) cannot stay on-chip; K spans two
        // tiles, so partials spill once and are re-read once.
        let c = cfg(Dataflow::WeightStationary);
        let shape = GemmShape::new(16384, 256, 16384);
        let (read, write) = dram_traffic(&c, shape, true);
        let out = shape.out_elems() * 4;
        assert_eq!(write, out * 2);
        assert!(read > out); // includes the partial re-read
    }

    #[test]
    fn batched_timing_scales_linearly() {
        let c = cfg(Dataflow::OuterProduct);
        let shape = GemmShape::new(512, 16, 512);
        let one = gemm_timing(&c, shape, 1, true);
        let many = gemm_timing(&c, shape, 8, true);
        assert_eq!(many.compute_cycles, 8 * one.compute_cycles);
        assert_eq!(many.dram_read_bytes, 8 * one.dram_read_bytes);
        assert_eq!(many.macs, 8 * one.macs);
    }

    #[test]
    fn memory_bound_gemm_is_limited_by_bandwidth() {
        // One outer-product tile (K = 1) writing back its full FP32 output:
        // 17 compute cycles vs ~64 KB of write traffic.
        let c = cfg(Dataflow::OuterProduct);
        let t = gemm_timing(&c, GemmShape::new(128, 1, 128), 1, true);
        assert!(t.memory_cycles > t.compute_cycles);
        assert_eq!(
            t.total_cycles,
            t.memory_cycles + c.memory.access_latency_cycles
        );
    }

    #[test]
    fn drain_overlap_hides_drain_behind_compute() {
        let mut c = cfg(Dataflow::OuterProduct);
        // 4 full M-tiles, 1 N-tile; K = 64, drain = 16.
        let shape = GemmShape::new(512, 64, 128);
        let serial = compute_cycles(&c, shape);
        assert_eq!(serial, 4 * (64 + 16));
        c.drain_overlap = true;
        let overlapped = compute_cycles(&c, shape);
        // First compute + 3 × max(64, 16) + final drain.
        assert_eq!(overlapped, 64 + 3 * 64 + 16);
        assert!(overlapped < serial);
    }

    #[test]
    fn drain_overlap_never_hurts() {
        for df in [Dataflow::OutputStationary, Dataflow::OuterProduct] {
            let mut with = cfg(df);
            with.drain_overlap = true;
            let without = cfg(df);
            for shape in [
                GemmShape::new(1, 1, 1),
                GemmShape::new(4608, 16, 512),
                GemmShape::new(300, 7, 300),
            ] {
                assert!(
                    compute_cycles(&with, shape) <= compute_cycles(&without, shape),
                    "{df}: {shape}"
                );
            }
        }
    }

    #[test]
    fn empty_shape_costs_nothing() {
        let c = cfg(Dataflow::WeightStationary);
        let t = gemm_timing(&c, GemmShape::new(0, 10, 10), 1, true);
        assert_eq!(t.total_cycles, 0);
        assert_eq!(t.utilization, 0.0);
    }

    #[test]
    fn utilization_never_exceeds_one() {
        for df in Dataflow::ALL {
            let c = AcceleratorConfig::builder(df).build().unwrap();
            for shape in [
                GemmShape::new(128, 128, 128),
                GemmShape::new(4096, 4096, 4096),
                GemmShape::new(1, 1, 1),
                GemmShape::new(1000, 3, 7),
            ] {
                let t = gemm_timing(&c, shape, 1, true);
                assert!(
                    t.utilization <= 1.0 + 1e-12,
                    "{df}: {shape} -> {}",
                    t.utilization
                );
            }
        }
    }
}
