//! Timing of DP-SGD's gradient post-processing (the memory-bound vector
//! operations of paper Section III-C) on a TPU-style vector unit, and their
//! fusion into the GEMM engine's drain path when a PPU is present.

use diva_arch::{AcceleratorConfig, VectorOpKind};

/// Timing of one post-processing (vector) operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VectorTiming {
    /// Whether the op was absorbed into the GEMM engine's output drain by
    /// the PPU (paper Section IV-C): no DRAM traffic, no extra cycles
    /// beyond the drain already counted in the producing GEMM.
    pub fused_into_drain: bool,
    /// DRAM bytes read.
    pub dram_read_bytes: u64,
    /// DRAM bytes written.
    pub dram_write_bytes: u64,
    /// SRAM bytes staged through the on-chip buffer (read + write).
    pub sram_bytes: u64,
    /// ALU cycles on the vector unit.
    pub alu_cycles: u64,
    /// End-to-end cycles: `max(alu, memory) + latency` (0 when fused).
    pub total_cycles: u64,
}

/// Number of FP32 lanes in the modeled vector unit. TPUv3's VPU processes
/// 8×128 lanes per core; we keep that figure. Post-processing remains
/// memory-bound at this width (the paper's observation).
pub const VECTOR_LANES: u64 = 1024;

/// Times a post-processing vector op.
///
/// `fusable` mirrors [`diva_arch::TrainingOpKind::Vector`]'s
/// `fusable_into_drain`: when the engine is output-stationary *and* has a
/// PPU, such ops ride the drain for free. Everything else pays DRAM
/// round-trips at `Table II` bandwidth plus vector-ALU time.
pub fn vector_timing(
    config: &AcceleratorConfig,
    kind: VectorOpKind,
    read_bytes: u64,
    write_bytes: u64,
    fusable: bool,
) -> VectorTiming {
    let ppu_capable = config.has_ppu && config.dataflow.is_output_stationary();
    if fusable && ppu_capable {
        return VectorTiming {
            fused_into_drain: true,
            dram_read_bytes: 0,
            dram_write_bytes: 0,
            sram_bytes: 0,
            alu_cycles: 0,
            total_cycles: 0,
        };
    }
    // Elements processed ≈ bytes/4 (FP32); norms do one multiply + add per
    // element, clip/reduce one op per element, noise ~2 (generate + add).
    let elems = (read_bytes + write_bytes) / 4;
    let ops_per_elem: u64 = match kind {
        VectorOpKind::GradNorm => 2,
        VectorOpKind::NoiseAdd => 2,
        VectorOpKind::GradClip | VectorOpKind::GradReduce | VectorOpKind::WeightUpdate => 1,
    };
    let alu_cycles = (elems * ops_per_elem).div_ceil(VECTOR_LANES);
    let bpc = config.memory.bytes_per_cycle(config.freq_hz);
    let memory_cycles = ((read_bytes + write_bytes) as f64 / bpc).ceil() as u64;
    let total = alu_cycles.max(memory_cycles)
        + if read_bytes + write_bytes == 0 {
            0
        } else {
            config.memory.access_latency_cycles
        };
    VectorTiming {
        fused_into_drain: false,
        dram_read_bytes: read_bytes,
        dram_write_bytes: write_bytes,
        sram_bytes: read_bytes + write_bytes,
        alu_cycles,
        total_cycles: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diva_arch::Dataflow;

    #[test]
    fn ppu_fuses_norms_for_free() {
        let diva = AcceleratorConfig::tpu_v3_like(Dataflow::OuterProduct);
        let t = vector_timing(&diva, VectorOpKind::GradNorm, 1 << 30, 4, true);
        assert!(t.fused_into_drain);
        assert_eq!(t.total_cycles, 0);
        assert_eq!(t.dram_read_bytes + t.dram_write_bytes, 0);
    }

    #[test]
    fn ws_cannot_fuse_even_if_marked_fusable() {
        let ws = AcceleratorConfig::tpu_v3_like(Dataflow::WeightStationary);
        let t = vector_timing(&ws, VectorOpKind::GradNorm, 1 << 30, 4, true);
        assert!(!t.fused_into_drain);
        assert!(t.total_cycles > 0);
    }

    #[test]
    fn norm_derivation_is_memory_bound() {
        // A 100 MB gradient tensor: memory time dwarfs ALU time.
        let ws = AcceleratorConfig::tpu_v3_like(Dataflow::WeightStationary);
        let t = vector_timing(&ws, VectorOpKind::GradNorm, 100 << 20, 4, false);
        let bpc = ws.memory.bytes_per_cycle(ws.freq_hz);
        let mem_cycles = ((100u64 << 20) as f64 / bpc).ceil() as u64;
        assert!(t.total_cycles >= mem_cycles);
        assert!(t.alu_cycles < mem_cycles);
    }

    #[test]
    fn zero_byte_op_is_free() {
        let ws = AcceleratorConfig::tpu_v3_like(Dataflow::WeightStationary);
        let t = vector_timing(&ws, VectorOpKind::GradReduce, 0, 0, false);
        assert_eq!(t.total_cycles, 0);
    }

    #[test]
    fn diva_without_ppu_pays_like_baseline() {
        let mut no_ppu = AcceleratorConfig::tpu_v3_like(Dataflow::OuterProduct);
        no_ppu.has_ppu = false;
        let t = vector_timing(&no_ppu, VectorOpKind::GradNorm, 1 << 20, 4, true);
        assert!(!t.fused_into_drain);
        assert!(t.total_cycles > 0);
    }
}
