//! Integration test host package.
