//! Concurrency tests for `diva-serve`: N clients racing on one cold key
//! must trigger exactly one computation (single-flight), every response
//! must be byte-identical, and — the determinism contract underneath the
//! memo cache — the served bytes must not depend on the compute pool's
//! thread count.

use std::sync::Arc;

use diva_bench::scenario::{self, json, RunOptions};
use diva_serve::{client, Server, ServerConfig};

fn cache_stats(server: &Server) -> (f64, f64, f64, f64) {
    let stats = client::get(server.addr(), "/stats").unwrap();
    let records = diva_bench::perf::parse_perf_json(&stats.text()).unwrap();
    let cache = records.iter().find(|r| r.name == "cache").unwrap();
    let metric = |key: &str| cache.metric_value(key).unwrap();
    (
        metric("hits"),
        metric("misses"),
        metric("joined"),
        metric("computed"),
    )
}

#[test]
fn racing_requests_share_one_computation() {
    let server = Arc::new(Server::start(ServerConfig::default()).unwrap());
    const CLIENTS: usize = 8;
    let body: &[u8] =
        br#"{"scenario": "fig13", "models": "squeezenet", "points": "ws,diva", "batch": "40"}"#;

    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let response = client::post_json(server.addr(), "/run", body).unwrap();
                assert_eq!(response.status, 200, "{}", response.text());
                response.body
            })
        })
        .collect();
    let bodies: Vec<Vec<u8>> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    assert!(
        bodies.windows(2).all(|w| w[0] == w[1]),
        "racing clients saw different bytes"
    );
    let (hits, misses, joined, computed) = cache_stats(&server);
    assert_eq!(
        computed, 1.0,
        "single-flight failed: {computed} computations"
    );
    assert_eq!(misses, 1.0, "exactly one leader");
    assert_eq!(
        hits + joined,
        (CLIENTS - 1) as f64,
        "every follower either joined the flight or hit the store"
    );
    server.shutdown();
    server.wait();
}

#[test]
fn distinct_keys_compute_independently() {
    let server = Arc::new(Server::start(ServerConfig::default()).unwrap());
    let handles: Vec<_> = [16u64, 24, 48, 64]
        .into_iter()
        .map(|batch| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let body = format!(
                    "{{\"scenario\": \"fig13\", \"models\": \"squeezenet\", \
                     \"points\": \"ws,diva\", \"batch\": \"{batch}\"}}"
                );
                let response = client::post_json(server.addr(), "/run", body.as_bytes()).unwrap();
                assert_eq!(response.status, 200, "{}", response.text());
                response.body
            })
        })
        .collect();
    let bodies: Vec<Vec<u8>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        bodies.windows(2).all(|w| w[0] != w[1]),
        "distinct batches must produce distinct documents"
    );
    let (_, _, _, computed) = cache_stats(&server);
    assert_eq!(computed, 4.0, "four distinct keys, four computations");
    server.shutdown();
    server.wait();
}

/// The byte-identity contract behind the cache: the same request served
/// with the compute pool pinned to one thread returns exactly the bytes
/// the default-width pool produced. (The expected document is computed
/// in-process at the default width first; the server then evaluates the
/// same cell grid cold at width 1.)
#[test]
fn responses_are_stable_across_thread_counts() {
    let opts = RunOptions::default()
        .filter("model", &["squeezenet"])
        .filter("point", &["ws", "diva"])
        .batches(&[56]);
    let expected = json::to_json(&scenario::run_with("fig13", &opts).unwrap());

    let default_width = diva_tensor::parallel::max_threads();
    diva_tensor::parallel::set_max_threads(1);
    let server = Server::start(ServerConfig::default()).unwrap();
    let response = client::post_json(
        server.addr(),
        "/run",
        br#"{"scenario": "fig13", "models": "squeezenet", "points": "ws,diva", "batch": "56"}"#,
    )
    .unwrap();
    diva_tensor::parallel::set_max_threads(default_width);
    assert_eq!(response.status, 200, "{}", response.text());
    assert_eq!(
        response.body,
        expected.as_bytes(),
        "served bytes changed with the worker thread count"
    );
    server.shutdown();
    server.wait();
}
