//! Property-style tests of the functional DP-SGD stack on randomly shaped
//! networks and data: the invariants of Algorithm 1 must hold everywhere.
//! Cases are drawn from a seeded generator (no proptest in the approved
//! dependency set), so every run checks the same deterministic sample.

use diva_dp::{clip_factors, DpSgdConfig, DpTrainer, TrainingAlgorithm};
use diva_nn::{GradMode, Layer, Network};
use diva_tensor::{softmax_cross_entropy, DivaRng, Tensor};

fn random_mlp(input: usize, hidden: usize, classes: usize, seed: u64) -> Network {
    let mut rng = DivaRng::seed_from_u64(seed);
    Network::new(vec![
        Layer::dense(input, hidden, true, &mut rng),
        Layer::relu(),
        Layer::dense(hidden, classes, true, &mut rng),
    ])
}

/// Per-example gradients always sum to the per-batch gradient.
#[test]
fn per_example_sums_to_batch() {
    let mut gen = DivaRng::seed_from_u64(0xa1);
    for _ in 0..24 {
        let b = 1 + gen.index(6);
        let input = 2 + gen.index(8);
        let hidden = 2 + gen.index(10);
        let seed = gen.index(500) as u64;
        let classes = 3;
        let net = random_mlp(input, hidden, classes, seed);
        let mut rng = DivaRng::seed_from_u64(seed ^ 0xabcd);
        let x = Tensor::uniform(&[b, input], -1.0, 1.0, &mut rng);
        let labels: Vec<usize> = (0..b).map(|i| i % classes).collect();
        let (y, caches) = net.forward(&x);
        let loss = softmax_cross_entropy(&y, &labels);
        let batch = net.backward(&caches, &loss.grad_logits, GradMode::PerBatch);
        let per_ex = net.backward(&caches, &loss.grad_logits, GradMode::PerExample);
        let reduced = per_ex.weighted_reduce(&vec![1.0; b]);
        let a = batch.flatten_per_batch();
        let c = reduced.flatten_per_batch();
        for (x1, x2) in a.iter().zip(&c) {
            assert!((x1 - x2).abs() < 1e-3, "{x1} vs {x2}");
        }
    }
}

/// Clipping always bounds every per-example gradient norm by C.
#[test]
fn clipping_bounds_norms() {
    let mut gen = DivaRng::seed_from_u64(0xa2);
    for _ in 0..24 {
        let b = 1 + gen.index(6);
        let clip = 0.01 + f64::from(gen.uniform(0.0, 9.99));
        let seed = gen.index(500) as u64;
        let net = random_mlp(5, 8, 3, seed);
        let mut rng = DivaRng::seed_from_u64(seed ^ 0x1234);
        let x = Tensor::uniform(&[b, 5], -2.0, 2.0, &mut rng);
        let labels: Vec<usize> = (0..b).map(|i| i % 3).collect();
        let (y, caches) = net.forward(&x);
        let loss = softmax_cross_entropy(&y, &labels);
        let per_ex = net.backward(&caches, &loss.grad_logits, GradMode::PerExample);
        let summary = clip_factors(&per_ex.per_example_sq_norms(), clip);
        for (norm, factor) in summary.norms.iter().zip(&summary.factors) {
            assert!(norm * factor <= clip * (1.0 + 1e-9));
            assert!(*factor <= 1.0);
            assert!(*factor > 0.0 || *norm == 0.0);
        }
    }
}

/// DP-SGD and DP-SGD(R) produce the same model for any configuration when
/// fed the same noise stream.
#[test]
fn dpsgd_equivalence_everywhere() {
    let mut gen = DivaRng::seed_from_u64(0xa3);
    for _ in 0..24 {
        let b = 2 + gen.index(4);
        let clip = 0.05 + f64::from(gen.uniform(0.0, 4.95));
        let sigma = f64::from(gen.uniform(0.0, 2.0));
        let seed = gen.index(300) as u64;
        let net0 = random_mlp(4, 6, 2, seed);
        let mut rng = DivaRng::seed_from_u64(seed ^ 0x9999);
        let x = Tensor::uniform(&[b, 4], -1.0, 1.0, &mut rng);
        let labels: Vec<usize> = (0..b).map(|i| i % 2).collect();
        let run = |alg| {
            let mut net = net0.clone();
            let trainer = DpTrainer::new(DpSgdConfig {
                algorithm: alg,
                clip_norm: clip,
                noise_multiplier: sigma,
                learning_rate: 0.1,
            });
            let mut noise_rng = DivaRng::seed_from_u64(777);
            trainer.step(&mut net, &x, &labels, &mut noise_rng);
            net
        };
        let a = run(TrainingAlgorithm::DpSgd);
        let c = run(TrainingAlgorithm::DpSgdReweighted);
        for (la, lc) in a.layers().iter().zip(c.layers()) {
            for (pa, pc) in la.params().iter().zip(lc.params()) {
                assert!(pa.max_abs_diff(pc) < 1e-4);
            }
        }
    }
}

/// The norm-only backward mode agrees with explicitly materialized
/// per-example gradients on CNN pipelines too.
#[test]
fn norm_only_matches_materialized_for_cnn() {
    let mut gen = DivaRng::seed_from_u64(0xa4);
    for _ in 0..24 {
        let b = 1 + gen.index(3);
        let seed = gen.index(200) as u64;
        let mut rng = DivaRng::seed_from_u64(seed);
        let net = Network::new(vec![
            Layer::conv2d(1, 3, 3, 1, 1, 6, 6, &mut rng),
            Layer::relu(),
            Layer::flatten(),
            Layer::dense(3 * 36, 2, true, &mut rng),
        ]);
        let x = Tensor::uniform(&[b, 1, 6, 6], -1.0, 1.0, &mut rng);
        let labels: Vec<usize> = (0..b).map(|i| i % 2).collect();
        let (y, caches) = net.forward(&x);
        let loss = softmax_cross_entropy(&y, &labels);
        let explicit = net
            .backward(&caches, &loss.grad_logits, GradMode::PerExample)
            .per_example_sq_norms();
        let fused = net
            .backward(&caches, &loss.grad_logits, GradMode::NormOnly)
            .per_example_sq_norms();
        for (e, f) in explicit.iter().zip(&fused) {
            assert!((e - f).abs() <= 1e-5 * e.max(1.0), "{e} vs {f}");
        }
    }
}

/// Zero noise + infinite clip = plain SGD, even through the DP code path.
#[test]
fn dp_degenerates_to_sgd() {
    let net0 = random_mlp(4, 8, 2, 11);
    let mut rng = DivaRng::seed_from_u64(12);
    let x = Tensor::uniform(&[5, 4], -1.0, 1.0, &mut rng);
    let labels = vec![0, 1, 0, 1, 0];
    let run = |alg| {
        let mut net = net0.clone();
        let trainer = DpTrainer::new(DpSgdConfig {
            algorithm: alg,
            clip_norm: 1e12,
            noise_multiplier: 0.0,
            learning_rate: 0.3,
        });
        let mut r = DivaRng::seed_from_u64(1);
        trainer.step(&mut net, &x, &labels, &mut r);
        net
    };
    let sgd = run(TrainingAlgorithm::Sgd);
    let dp = run(TrainingAlgorithm::DpSgd);
    let dpr = run(TrainingAlgorithm::DpSgdReweighted);
    for ((a, b), c) in sgd.layers().iter().zip(dp.layers()).zip(dpr.layers()) {
        for ((pa, pb), pc) in a.params().iter().zip(b.params()).zip(c.params()) {
            assert!(pa.max_abs_diff(pb) < 1e-5);
            assert!(pa.max_abs_diff(pc) < 1e-5);
        }
    }
}
