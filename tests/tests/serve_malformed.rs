//! Malformed-input tests for `diva-serve`: every broken request —
//! truncated heads, oversized and chunked bodies, bad JSON, unknown
//! scenario/parameter names — must produce a *typed* 4xx response (or a
//! clean close), never a panic, and must leave the server fully
//! functional. A seeded mutation corpus (same FNV-1a hashing style as
//! the fault-injection planner) hammers the parser with deterministic
//! garbage; the final assertions are the real test: zero handler panics
//! and a healthy `/scenarios` answer afterwards.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};

use diva_bench::faults::fnv1a64;
use diva_serve::{client, Server, ServerConfig};

fn start() -> Server {
    Server::start(ServerConfig {
        max_body_bytes: 4096,
        read_timeout_ms: 2000,
        ..ServerConfig::default()
    })
    .expect("starting in-process server")
}

/// Writes `raw` to a fresh connection, half-closes, and reads whatever
/// the server answers (empty = closed without a response).
fn send_raw(server: &Server, raw: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // The server may answer (and half-close) before the whole payload is
    // written — e.g. an oversized head trips the budget 16 KiB in — so
    // write and shutdown errors are expected, not failures.
    let _ = stream.write_all(raw);
    let _ = stream.shutdown(Shutdown::Write);
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    response
}

fn status_of(response: &[u8]) -> Option<u16> {
    let text = String::from_utf8_lossy(response);
    text.split_whitespace().nth(1)?.parse().ok()
}

#[test]
fn protocol_errors_get_typed_statuses() {
    let server = start();
    let cases: &[(&[u8], u16)] = &[
        // Truncated request head (connection closed mid-line).
        (b"GET /scenarios HTTP", 400),
        // Garbage request line.
        (b"GARBAGE\r\n\r\n", 400),
        // Malformed header line.
        (b"GET /scenarios HTTP/1.1\r\nHost diva\r\n\r\n", 400),
        // POST without Content-Length.
        (b"POST /run HTTP/1.1\r\n\r\n", 411),
        // Chunked transfer encoding is rejected, not half-parsed.
        (
            b"POST /run HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nabcd\r\n0\r\n\r\n",
            411,
        ),
        // Declared body larger than the configured limit.
        (b"POST /run HTTP/1.1\r\nContent-Length: 999999\r\n\r\n", 413),
        // Body truncated below its declared length.
        (
            b"POST /run HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"scenario\"",
            400,
        ),
        // Unparseable Content-Length.
        (b"POST /run HTTP/1.1\r\nContent-Length: banana\r\n\r\n", 400),
        // Unsupported protocol version.
        (b"GET /scenarios SPDY/99\r\n\r\n", 400),
    ];
    for (raw, want) in cases {
        let response = send_raw(&server, raw);
        assert_eq!(
            status_of(&response),
            Some(*want),
            "request {:?} answered {:?}",
            String::from_utf8_lossy(raw),
            String::from_utf8_lossy(&response)
        );
    }
    // An oversized head trips the head budget, not an allocation.
    let huge = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(64 * 1024));
    assert_eq!(status_of(&send_raw(&server, huge.as_bytes())), Some(413));

    assert_healthy(&server);
    server.shutdown();
    server.wait();
}

#[test]
fn api_errors_are_typed_and_name_the_problem() {
    let server = start();
    let post = |path: &str, body: &[u8]| client::post_json(server.addr(), path, body).unwrap();

    let response = post("/run", b"this is not json");
    assert_eq!(response.status, 400, "{}", response.text());
    assert!(response.text().contains("bad-request"));

    let response = post("/run", br#"{"models": "squeezenet"}"#);
    assert_eq!(response.status, 400);
    assert!(response.text().contains("scenario"));

    let response = post("/run", br#"{"scenario": "fig99"}"#);
    assert_eq!(response.status, 404, "{}", response.text());
    assert!(response.text().contains("unknown scenario"));
    assert!(response.text().contains("fig13"), "names the registry");

    let response = post("/run", br#"{"scenario": "fig13", "set.sram_gib": "8"}"#);
    assert_eq!(response.status, 400);
    assert!(response.text().contains("unknown parameter"));

    let response = post("/run", br#"{"scenario": "fig13", "batch": "0"}"#);
    assert_eq!(response.status, 400);

    let response = post("/run", br#"{"scenario": "fig13", "mode": "eventually"}"#);
    assert_eq!(response.status, 400);

    let response = post("/epsilon", br#"{"q": 0.01, "sigma": 1.1}"#);
    assert_eq!(response.status, 400);
    assert!(response.text().contains("steps"));

    let response = post(
        "/epsilon",
        br#"{"accountant": "magic", "q": 0.01, "sigma": 1.1, "steps": 10}"#,
    );
    assert_eq!(response.status, 400, "{}", response.text());

    let response = post("/epsilon", br#"{"q": 2.5, "sigma": 1.1, "steps": 10}"#);
    assert_eq!(response.status, 400, "q out of domain: {}", response.text());

    let response = post("/compare", b"no separator here");
    assert_eq!(response.status, 400);
    assert!(response.text().contains("---"));

    // Wrong method and unknown path.
    let response = client::request(server.addr(), "GET", "/run", None).unwrap();
    assert_eq!(response.status, 405);
    let response = client::get(server.addr(), "/nope").unwrap();
    assert_eq!(response.status, 404);
    assert!(response.text().contains("/scenarios"), "lists endpoints");
    let response = client::get(server.addr(), "/jobs/banana").unwrap();
    assert_eq!(response.status, 400);

    assert_healthy(&server);
    server.shutdown();
    server.wait();
}

/// Deterministic mutation corpus: truncations and byte flips of a valid
/// request, positions derived by FNV-1a hashing (the `faults` module's
/// style) so every run exercises the identical corpus.
#[test]
fn seeded_mutation_corpus_never_kills_the_server() {
    let server = start();
    let valid: &[u8] = b"POST /epsilon HTTP/1.1\r\nHost: diva\r\nContent-Length: 38\r\n\r\n{\"q\": 0.01, \"sigma\": 1.1, \"steps\": 10}";
    for case in 0u64..48 {
        let h = fnv1a64(&[b"serve-malformed", &case.to_le_bytes()]);
        let mut raw = valid.to_vec();
        if case % 2 == 0 {
            // Truncate at a hash-derived position.
            raw.truncate(1 + (h as usize) % (valid.len() - 1));
        } else {
            // Flip a hash-derived byte to a hash-derived value.
            let pos = (h as usize) % raw.len();
            raw[pos] = (h >> 32) as u8;
        }
        let response = send_raw(&server, &raw);
        if let Some(status) = status_of(&response) {
            assert!(
                (200..=599).contains(&status),
                "case {case}: nonsense status {status}"
            );
        }
        // No response at all is acceptable (the mutation broke the
        // request line); a dead server is not — checked below.
    }
    assert_healthy(&server);
    server.shutdown();
    server.wait();
}

/// The server answers `/scenarios` and reports zero internal (panic)
/// errors — the "still alive and never panicked" invariant every test
/// above ends on.
fn assert_healthy(server: &Server) {
    let response = client::get(server.addr(), "/scenarios").unwrap();
    assert_eq!(response.status, 200, "server unhealthy after abuse");
    let stats = client::get(server.addr(), "/stats").unwrap();
    let records = diva_bench::perf::parse_perf_json(&stats.text()).unwrap();
    let errors = records.iter().find(|r| r.name == "errors").unwrap();
    assert_eq!(
        errors.metric_value("internal"),
        Some(0.0),
        "a handler panicked: {}",
        stats.text()
    );
}
