//! Seeded property tests for the privacy accountant and the clipping /
//! reweighting machinery — the DP-side contract that guards the fused
//! convolution backward. Configurations are drawn from a seeded generator
//! (no proptest in the approved dependency set), so every run checks the
//! same deterministic sample:
//!
//! * ε is monotone increasing in steps and monotone decreasing in σ, for
//!   random `(q, σ, steps)` draws.
//! * Clip factors never exceed 1, never vanish for positive norms, and
//!   always bring the clipped norm under the bound.
//! * DP-SGD(R)'s fused reweighted backward (norms-only pass + reweighted
//!   per-batch pass) matches the two-pass reference that materializes
//!   per-example gradients and reduces them — on CNNs, so the shared patch
//!   buffer and packed-B reuse sit on the tested path.

use diva_dp::{clip_factors, RdpAccountant};
use diva_nn::{GradMode, Layer, Network};
use diva_tensor::{softmax_cross_entropy, DivaRng, Tensor};

/// ε must grow strictly with composition length for any valid mechanism.
#[test]
fn epsilon_is_monotone_in_steps() {
    let mut gen = DivaRng::seed_from_u64(0xd1);
    for _ in 0..20 {
        let q = 0.001 + 0.2 * f64::from(gen.uniform(0.0, 1.0));
        let sigma = 0.5 + 2.5 * f64::from(gen.uniform(0.0, 1.0));
        let delta = 1e-5;
        let acc = RdpAccountant::new(q, sigma);
        let mut prev = 0.0;
        for steps in [50u64, 200, 800, 3200, 12800] {
            let eps = acc.epsilon(steps, delta);
            assert!(
                eps > prev,
                "epsilon not increasing in steps: q={q} sigma={sigma} steps={steps}: \
                 {eps} <= {prev}"
            );
            prev = eps;
        }
    }
}

/// More noise can never cost more privacy: ε is non-increasing in σ.
#[test]
fn epsilon_is_monotone_in_sigma() {
    let mut gen = DivaRng::seed_from_u64(0xd2);
    for _ in 0..20 {
        let q = 0.001 + 0.1 * f64::from(gen.uniform(0.0, 1.0));
        let steps = 100 + gen.index(5_000) as u64;
        let delta = 1e-5;
        let mut prev = f64::INFINITY;
        for sigma in [0.6, 0.9, 1.4, 2.2, 3.5] {
            let eps = RdpAccountant::new(q, sigma).epsilon(steps, delta);
            assert!(
                eps < prev,
                "epsilon not decreasing in sigma: q={q} steps={steps} sigma={sigma}: \
                 {eps} >= {prev}"
            );
            prev = eps;
        }
    }
}

/// Per-step RDP is non-negative and non-decreasing in the order α (a known
/// property of Rényi divergence the log-sum-exp implementation must keep).
#[test]
fn rdp_is_nonnegative_and_monotone_in_order() {
    let mut gen = DivaRng::seed_from_u64(0xd3);
    for _ in 0..20 {
        let q = 0.001 + 0.3 * f64::from(gen.uniform(0.0, 1.0));
        let sigma = 0.5 + 2.0 * f64::from(gen.uniform(0.0, 1.0));
        let acc = RdpAccountant::new(q, sigma);
        let mut prev = 0.0;
        for alpha in [2u32, 4, 8, 16, 32, 64, 128] {
            let rdp = acc.rdp_at(alpha);
            assert!(rdp >= 0.0, "negative RDP at alpha={alpha}");
            assert!(
                rdp >= prev - 1e-12,
                "RDP decreasing in alpha: q={q} sigma={sigma} alpha={alpha}"
            );
            prev = rdp;
        }
    }
}

/// Clip factors are in (0, 1], equal 1 exactly when the norm is within the
/// bound, and always bring the clipped norm under `C` — across random norm
/// magnitudes spanning twelve orders.
#[test]
fn clip_factors_stay_in_unit_interval_and_bound_norms() {
    let mut gen = DivaRng::seed_from_u64(0xd4);
    for _ in 0..40 {
        let c = 10f64.powf(f64::from(gen.uniform(-3.0, 3.0)));
        let n = 1 + gen.index(32);
        let sq_norms: Vec<f64> = (0..n)
            .map(|_| 10f64.powf(f64::from(gen.uniform(-6.0, 6.0))))
            .collect();
        let summary = clip_factors(&sq_norms, c);
        assert_eq!(summary.factors.len(), n);
        let mut clipped = 0;
        for (i, (&f, &sq)) in summary.factors.iter().zip(&sq_norms).enumerate() {
            assert!(f > 0.0 && f <= 1.0, "factor {f} outside (0,1] at {i}");
            let norm = sq.sqrt();
            assert!(
                norm * f <= c * (1.0 + 1e-12),
                "clipped norm {} exceeds bound {c}",
                norm * f
            );
            if norm <= c {
                assert_eq!(f, 1.0, "in-bound example {i} was scaled");
            } else {
                clipped += 1;
            }
        }
        assert_eq!(summary.clipped_count, clipped);
    }
}

fn random_cnn(gen: &mut DivaRng) -> (Network, usize, usize, usize) {
    let cin = 1 + gen.index(3);
    let cout = 2 + gen.index(5);
    let hw = 6 + gen.index(5); // 6..=10
    let classes = 3;
    let seed = gen.index(1_000) as u64;
    let mut rng = DivaRng::seed_from_u64(seed);
    let net = Network::new(vec![
        Layer::conv2d(cin, cout, 3, 1, 1, hw, hw, &mut rng),
        Layer::relu(),
        Layer::flatten(),
        Layer::dense(cout * hw * hw, classes, true, &mut rng),
    ]);
    (net, cin, hw, classes)
}

/// The core DP-SGD(R) identity on CNNs: clip factors from the `NormOnly`
/// pass, applied as per-example loss scales through the fused reweighted
/// backward, reproduce the two-pass reference (materialize per-example
/// gradients, scale, reduce) — and the `NormOnly` norms themselves match
/// the materialized ones.
#[test]
fn reweighted_backward_matches_two_pass_reference_on_cnns() {
    let mut gen = DivaRng::seed_from_u64(0xd5);
    for case in 0..8 {
        let (net, cin, hw, classes) = random_cnn(&mut gen);
        let b = 1 + gen.index(6);
        let clip = 0.05 + 2.0 * f64::from(gen.uniform(0.0, 1.0));
        let mut rng = DivaRng::seed_from_u64(0x5eed ^ case);
        let x = Tensor::uniform(&[b, cin, hw, hw], -1.0, 1.0, &mut rng);
        let labels: Vec<usize> = (0..b).map(|i| i % classes).collect();
        let (y, caches) = net.forward(&x);
        let loss = softmax_cross_entropy(&y, &labels);

        // Pass 1: norms only (fused patch-reuse path).
        let norm_pass = net.backward(&caches, &loss.grad_logits, GradMode::NormOnly);
        let norms = norm_pass.per_example_sq_norms();

        // Reference: materialized per-example gradients.
        let per_ex = net.backward(&caches, &loss.grad_logits, GradMode::PerExample);
        let ref_norms = per_ex.per_example_sq_norms();
        for (i, (a, r)) in norms.iter().zip(&ref_norms).enumerate() {
            assert!(
                (a - r).abs() <= 1e-5 * r.max(1.0),
                "case {case}: norm {i} diverged: {a} vs {r}"
            );
        }

        let summary = clip_factors(&norms, clip);
        // Pass 2: fused reweighted per-batch backward.
        let fused = net.backward_reweighted(&caches, &loss.grad_logits, &summary.factors);
        // Reference: scale the materialized per-example gradients, reduce.
        let reference = per_ex.weighted_reduce(&summary.factors);
        let a = fused.flatten_per_batch();
        let r = reference.flatten_per_batch();
        assert_eq!(a.len(), r.len());
        for (i, (fa, fr)) in a.iter().zip(&r).enumerate() {
            assert!(
                (fa - fr).abs() <= 1e-3,
                "case {case}: reweighted grad {i} diverged: {fa} vs {fr}"
            );
        }
    }
}
