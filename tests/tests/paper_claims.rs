//! Integration tests pinning the paper's headline quantitative claims to
//! tolerance bands. These run the *entire* stack: model zoo → op lowering →
//! analytic simulation → energy accounting.
//!
//! We assert shapes, not the paper's absolute numbers (our substrate is a
//! reimplemented simulator): who wins, by roughly what factor, and where
//! the crossovers are.

use diva_core::{geomean, Accelerator, DesignPoint, Phase};
use diva_workload::{zoo, Algorithm};

const HBM: u64 = 16 * (1 << 30);

fn paper_batch(model: &diva_workload::ModelSpec) -> u64 {
    model.max_batch_pow2(Algorithm::DpSgd, HBM).max(1)
}

/// Abstract: "2.6× higher energy-efficiency vs conventional systolic
/// arrays" — we accept a 1.5×–8× band for the suite average.
#[test]
fn headline_energy_efficiency() {
    let ws = Accelerator::from_design_point(DesignPoint::WsBaseline).unwrap();
    let diva = Accelerator::from_design_point(DesignPoint::Diva).unwrap();
    let reductions: Vec<f64> = zoo::all_models()
        .iter()
        .map(|m| {
            let b = paper_batch(m);
            let e_ws = ws.run(m, Algorithm::DpSgdReweighted, b).energy.total();
            let e_diva = diva.run(m, Algorithm::DpSgdReweighted, b).energy.total();
            e_ws / e_diva
        })
        .collect();
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    assert!(
        (1.5..8.0).contains(&avg),
        "average energy reduction {avg:.2}x outside the accepted band (paper: 2.6x)"
    );
    // Every model must at least break even.
    assert!(reductions.iter().all(|&r| r > 1.0), "{reductions:?}");
}

/// Section VI-A: DiVa end-to-end speedup vs WS — paper avg 3.6×, max 7.3×.
/// We accept a 2×–6× band for the average and require max ≥ 3×.
#[test]
fn headline_end_to_end_speedup() {
    let ws = Accelerator::from_design_point(DesignPoint::WsBaseline).unwrap();
    let diva = Accelerator::from_design_point(DesignPoint::Diva).unwrap();
    let speedups: Vec<f64> = zoo::all_models()
        .iter()
        .map(|m| {
            let b = paper_batch(m);
            let t_ws = ws.run(m, Algorithm::DpSgdReweighted, b).seconds;
            let t_diva = diva.run(m, Algorithm::DpSgdReweighted, b).seconds;
            t_ws / t_diva
        })
        .collect();
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let max = speedups.iter().cloned().fold(0.0, f64::max);
    assert!(
        (2.0..6.0).contains(&avg),
        "average speedup {avg:.2}x outside band (paper: 3.6x); all: {speedups:?}"
    );
    assert!(max >= 3.0, "max speedup {max:.2}x too low (paper: 7.3x)");
    assert!(
        speedups.iter().all(|&s| s > 1.0),
        "DiVa must win on every model: {speedups:?}"
    );
}

/// Section III-B: on the WS baseline, DP-SGD is many times slower than SGD
/// (paper avg 9.1×) and DP-SGD(R) beats vanilla DP-SGD (paper ~31% faster).
#[test]
fn dp_training_tax_and_reweighting_win() {
    let ws = Accelerator::from_design_point(DesignPoint::WsBaseline).unwrap();
    let mut dp_slowdowns = Vec::new();
    let mut dpr_wins = 0usize;
    let models = zoo::all_models();
    for m in &models {
        let b = paper_batch(m);
        let sgd = ws.run(m, Algorithm::Sgd, b).seconds;
        let dp = ws.run(m, Algorithm::DpSgd, b).seconds;
        let dpr = ws.run(m, Algorithm::DpSgdReweighted, b).seconds;
        dp_slowdowns.push(dp / sgd);
        if dpr < dp {
            dpr_wins += 1;
        }
    }
    let avg = dp_slowdowns.iter().sum::<f64>() / dp_slowdowns.len() as f64;
    assert!(
        avg > 2.5,
        "DP-SGD should be much slower than SGD on WS, got avg {avg:.2}x"
    );
    // DP-SGD(R) wins on the (large) majority of models. (The paper reports
    // an average 31% win; MobileNet-style models can flip locally.)
    assert!(
        dpr_wins * 2 > models.len(),
        "DP-SGD(R) won on only {dpr_wins}/{} models",
        models.len()
    );
}

/// Section III-A / Figure 4: DP-SGD's memory is dominated by per-example
/// gradients (paper: ~78% average) and DP-SGD(R) shrinks the footprint
/// (paper: ~3.8× average).
#[test]
fn memory_bloat_and_reweighted_savings() {
    let mut fracs = Vec::new();
    let mut reductions = Vec::new();
    for m in zoo::all_models() {
        let b = paper_batch(&m);
        let dp = m.memory_profile(Algorithm::DpSgd, b);
        let dpr = m.memory_profile(Algorithm::DpSgdReweighted, b);
        fracs.push(dp.per_example_fraction());
        reductions.push(dp.total() as f64 / dpr.total() as f64);
    }
    let avg_frac = fracs.iter().sum::<f64>() / fracs.len() as f64;
    let avg_red = reductions.iter().sum::<f64>() / reductions.len() as f64;
    assert!(
        avg_frac > 0.5,
        "per-example gradients should dominate DP-SGD memory, got {avg_frac:.2}"
    );
    assert!(
        (2.0..8.0).contains(&avg_red),
        "DP-SGD(R) memory reduction {avg_red:.2}x outside band (paper: 3.8x)"
    );
}

/// Section IV-C / VI-A: the PPU eliminates essentially all off-chip traffic
/// of gradient post-processing (paper: 99%).
#[test]
fn ppu_kills_postprocessing_traffic() {
    let diva = Accelerator::from_design_point(DesignPoint::Diva).unwrap();
    let no_ppu = Accelerator::from_design_point(DesignPoint::DivaNoPpu).unwrap();
    for m in zoo::all_models() {
        let b = paper_batch(&m);
        let with = diva.run(&m, Algorithm::DpSgdReweighted, b);
        let without = no_ppu.run(&m, Algorithm::DpSgdReweighted, b);
        // Norm phase fully fused with the PPU.
        assert_eq!(
            with.phase_cycles(Phase::BwdGradNorm),
            0,
            "{}: PPU failed to fuse norms",
            m.name
        );
        assert!(without.phase_cycles(Phase::BwdGradNorm) > 0, "{}", m.name);
        // Gradient spill traffic (per-example write + norm sweeps).
        let spill = |r: &diva_core::StepTiming| {
            r.ops
                .iter()
                .filter(|o| o.phase == Phase::BwdPerExampleGrad)
                .map(|o| o.dram_write_bytes)
                .sum::<u64>()
                + r.phase_dram_bytes(Phase::BwdGradNorm)
        };
        let b_with = spill(&with.timing);
        let b_without = spill(&without.timing);
        assert!(
            (b_with as f64) < 0.05 * b_without as f64,
            "{}: PPU reduction only {:.1}%",
            m.name,
            100.0 * (1.0 - b_with as f64 / b_without as f64)
        );
    }
}

/// Figure 15: DiVa's utilization gain concentrates in per-example-gradient
/// GEMMs (paper: avg 5.5×; CNNs benefit most).
#[test]
fn per_example_utilization_improvement() {
    let ws = Accelerator::from_design_point(DesignPoint::WsBaseline).unwrap();
    let diva = Accelerator::from_design_point(DesignPoint::Diva).unwrap();
    let mut gains = Vec::new();
    for m in zoo::all_models() {
        let b = paper_batch(&m);
        let pe_macs = ws.config().pe.macs();
        let u_ws = ws
            .run(&m, Algorithm::DpSgdReweighted, b)
            .phase_utilization(Phase::BwdPerExampleGrad, pe_macs);
        let u_diva = diva
            .run(&m, Algorithm::DpSgdReweighted, b)
            .phase_utilization(Phase::BwdPerExampleGrad, pe_macs);
        assert!(u_ws > 0.0 && u_diva > 0.0, "{}", m.name);
        gains.push(u_diva / u_ws);
    }
    let gm = geomean(&gains);
    assert!(
        gm > 2.0,
        "per-example utilization geomean gain {gm:.2}x too small (paper avg: 5.5x)"
    );
    assert!(gains.iter().all(|&g| g > 1.0), "{gains:?}");
}

/// Section VI-A: non-private SGD also benefits from the outer-product
/// dataflow (paper: ~1.6×), and DiVa's DP training approaches non-private
/// WS throughput (paper: ~75%).
#[test]
fn sgd_side_benefits() {
    let ws = Accelerator::from_design_point(DesignPoint::WsBaseline).unwrap();
    let diva = Accelerator::from_design_point(DesignPoint::Diva).unwrap();
    let mut sgd_speedups = Vec::new();
    let mut dp_vs_sgd = Vec::new();
    for m in zoo::all_models() {
        let b = paper_batch(&m);
        let ws_sgd = ws.run(&m, Algorithm::Sgd, b).seconds;
        let diva_sgd = diva.run(&m, Algorithm::Sgd, b).seconds;
        let diva_dp = diva.run(&m, Algorithm::DpSgdReweighted, b).seconds;
        sgd_speedups.push(ws_sgd / diva_sgd);
        dp_vs_sgd.push(ws_sgd / diva_dp);
    }
    let avg_sgd = sgd_speedups.iter().sum::<f64>() / sgd_speedups.len() as f64;
    assert!(
        (1.0..4.0).contains(&avg_sgd),
        "DiVa-SGD speedup {avg_sgd:.2}x outside band (paper: 1.6x)"
    );
    let avg_ratio = dp_vs_sgd.iter().sum::<f64>() / dp_vs_sgd.len() as f64;
    assert!(
        avg_ratio > 0.5,
        "DiVa DP-SGD(R) reaches only {:.0}% of WS SGD (paper: ~75%)",
        100.0 * avg_ratio
    );
}

/// The fig13 scenario run through the registry must reproduce the same
/// headline numbers as the legacy shim path computed by hand: identical
/// per-model speedups (same simulator calls) and a bit-identical geomean
/// (both sides reduce with `diva_core::geomean` over the same model
/// order).
#[test]
fn fig13_registry_matches_direct_computation() {
    use diva_bench::scenario::{self, RunOptions};

    let result = scenario::run_with("fig13", &RunOptions::default()).expect("fig13 runs");

    let ws = Accelerator::from_design_point(DesignPoint::WsBaseline).unwrap();
    let diva = Accelerator::from_design_point(DesignPoint::Diva).unwrap();
    let mut direct = Vec::new();
    for m in zoo::all_models() {
        let b = paper_batch(&m);
        let t_ws = ws.run(&m, Algorithm::DpSgdReweighted, b).seconds;
        let t_diva = diva.run(&m, Algorithm::DpSgdReweighted, b).seconds;
        direct.push((m.name.clone(), t_ws / t_diva));
    }

    // Per-model speedups agree exactly (same simulator, same arithmetic).
    for (name, speedup) in &direct {
        let row = result
            .rows
            .iter()
            .find(|r| {
                r.coord("model") == Some(name)
                    && r.coord("point") == Some("DiVa")
                    && r.coord("algorithm") == Some("DP-SGD(R)")
            })
            .unwrap_or_else(|| panic!("no fig13 row for {name}"));
        assert_eq!(
            row.get("speedup"),
            Some(*speedup),
            "{name}: registry speedup diverged from the direct path"
        );
    }

    // And so does the declared geomean reduction.
    let summary = result
        .summaries
        .iter()
        .find(|s| s.label == "DiVa speedup vs WS (geomean)")
        .expect("fig13 declares the geomean headline");
    let speedups: Vec<f64> = direct.iter().map(|(_, s)| *s).collect();
    assert_eq!(summary.count, speedups.len());
    assert_eq!(summary.value, geomean(&speedups));
}

/// Section VI-C: DiVa's edge narrows (but persists) as inputs grow.
#[test]
fn sensitivity_trend_holds() {
    let ws = Accelerator::from_design_point(DesignPoint::WsBaseline).unwrap();
    let diva = Accelerator::from_design_point(DesignPoint::Diva).unwrap();
    let speedup = |m: &diva_workload::ModelSpec| {
        let b = paper_batch(m);
        ws.run(m, Algorithm::DpSgdReweighted, b).seconds
            / diva.run(m, Algorithm::DpSgdReweighted, b).seconds
    };
    let s32 = speedup(&zoo::resnet50_at(32));
    let s128 = speedup(&zoo::resnet50_at(128));
    assert!(
        s128 < s32,
        "speedup should narrow with larger images: {s32} -> {s128}"
    );
    assert!(s128 > 1.0, "but DiVa should still win: {s128}");

    let l32 = speedup(&zoo::bert_base_with_seq(32));
    let l256 = speedup(&zoo::bert_base_with_seq(256));
    assert!(
        l256 < l32,
        "speedup should narrow with longer sequences: {l32} -> {l256}"
    );
    assert!(l256 > 1.0, "but DiVa should still win: {l256}");
}
