//! End-to-end functional DP training across the full layer set: a
//! GroupNorm CNN on image data and an Embedding+LSTM classifier on token
//! sequences, both trained with DP-SGD(R) and checked for real learning —
//! plus Poisson-sampled training wired to the RDP accountant, i.e. the
//! complete DP-SGD system as deployed.

use diva_dp::{
    make_image_blobs, poisson_sample, DpSgdConfig, DpTrainer, RdpAccountant, TrainingAlgorithm,
};
use diva_nn::{Layer, Network};
use diva_tensor::{argmax_rows, DivaRng, Tensor};

fn accuracy(net: &Network, x: &Tensor, labels: &[usize]) -> f64 {
    let (logits, _) = net.forward(x);
    let preds = argmax_rows(&logits);
    preds.iter().zip(labels).filter(|(p, l)| p == l).count() as f64 / labels.len() as f64
}

#[test]
fn groupnorm_cnn_learns_under_dp() {
    let mut rng = DivaRng::seed_from_u64(77);
    let train = make_image_blobs(512, 8, 2, 0.4, &mut rng);
    let test = make_image_blobs(128, 8, 2, 0.4, &mut rng);

    let mut net = Network::new(vec![
        Layer::conv2d(1, 8, 3, 1, 1, 8, 8, &mut rng),
        Layer::group_norm(8, 4),
        Layer::relu(),
        Layer::max_pool2d(2),
        Layer::flatten(),
        Layer::dense(8 * 4 * 4, 2, true, &mut rng),
    ]);
    let trainer = DpTrainer::new(DpSgdConfig {
        algorithm: TrainingAlgorithm::DpSgdReweighted,
        clip_norm: 1.0,
        noise_multiplier: 0.4,
        learning_rate: 0.4,
    });
    let batch = 64;
    for epoch in 0..6 {
        for s in 0..train.len() / batch {
            let (x, labels) = train.batch(s * batch, batch);
            trainer.step(&mut net, &x, &labels, &mut rng);
        }
        let _ = epoch;
    }
    let (x, labels) = test.batch(0, test.len());
    let acc = accuracy(&net, &x, &labels);
    assert!(acc > 0.9, "DP CNN accuracy only {acc:.2}");
}

#[test]
fn embedding_lstm_classifier_learns_under_dp() {
    let mut rng = DivaRng::seed_from_u64(88);
    // Token sequences where the dominant token identifies the class.
    let vocab = 12usize;
    let seq = 8usize;
    let make = |n: usize, rng: &mut DivaRng| -> (Tensor, Vec<usize>) {
        let mut data = Vec::with_capacity(n * seq);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let marker = if class == 0 { 2.0 } else { 9.0 };
            for t in 0..seq {
                // Mostly the class marker, some noise tokens.
                let tok = if t % 3 == 0 {
                    rng.index(vocab) as f32
                } else {
                    marker
                };
                data.push(tok);
            }
            labels.push(class);
        }
        (Tensor::from_vec(data, &[n, seq]), labels)
    };

    let hidden = 16;
    let mut net = Network::new(vec![
        Layer::embedding(vocab, 8, &mut rng),
        Layer::lstm(8, hidden, &mut rng),
        Layer::flatten(),
        Layer::dense(seq * hidden, 2, true, &mut rng),
    ]);
    let trainer = DpTrainer::new(DpSgdConfig {
        algorithm: TrainingAlgorithm::DpSgdReweighted,
        clip_norm: 1.0,
        noise_multiplier: 0.3,
        learning_rate: 0.5,
    });
    for _ in 0..40 {
        let (x, labels) = make(32, &mut rng);
        trainer.step(&mut net, &x, &labels, &mut rng);
    }
    let (x, labels) = make(128, &mut rng);
    let acc = accuracy(&net, &x, &labels);
    assert!(acc > 0.85, "DP LSTM accuracy only {acc:.2}");
}

#[test]
fn poisson_sampled_training_with_accountant() {
    let mut rng = DivaRng::seed_from_u64(99);
    let train = diva_dp::make_blobs(1000, 8, 2, 0.4, &mut rng);
    let mut net = Network::new(vec![
        Layer::dense(8, 16, true, &mut rng),
        Layer::relu(),
        Layer::dense(16, 2, true, &mut rng),
    ]);
    let q = 0.064; // expected batch 64
    let sigma = 0.8;
    let trainer = DpTrainer::new(DpSgdConfig {
        algorithm: TrainingAlgorithm::DpSgdReweighted,
        clip_norm: 1.0,
        noise_multiplier: sigma,
        learning_rate: 0.5,
    });
    let accountant = RdpAccountant::new(q, sigma);
    let mut steps = 0u64;
    let mut last_loss = f64::INFINITY;
    for _ in 0..100 {
        if let Some((x, labels)) = poisson_sample(&train, q, &mut rng) {
            last_loss = trainer.step(&mut net, &x, &labels, &mut rng).mean_loss;
        }
        steps += 1; // privacy is charged whether or not the draw was empty
    }
    let eps = accountant.epsilon(steps, 1e-5);
    assert!(eps > 0.0 && eps < 20.0, "epsilon {eps} out of range");
    assert!(
        last_loss < 0.5,
        "training did not progress: loss {last_loss}"
    );

    let (x, labels) = train.batch(0, 256);
    let acc = accuracy(&net, &x, &labels);
    assert!(acc > 0.9, "accuracy only {acc:.2} at eps {eps:.2}");
}

#[test]
fn microbatch_accumulation_trains_with_small_memory() {
    // Simulate DP training at effective batch 64 using microbatches of 8 —
    // the practitioner workaround for the paper's Section III-A memory wall.
    let mut rng = DivaRng::seed_from_u64(111);
    let train = diva_dp::make_blobs(512, 6, 2, 0.4, &mut rng);
    let mut net = Network::new(vec![
        Layer::dense(6, 12, true, &mut rng),
        Layer::relu(),
        Layer::dense(12, 2, true, &mut rng),
    ]);
    let trainer = DpTrainer::new(DpSgdConfig {
        algorithm: TrainingAlgorithm::DpSgd,
        clip_norm: 1.0,
        noise_multiplier: 0.5,
        learning_rate: 0.5,
    });
    let mut last_loss = f64::INFINITY;
    for step in 0..24 {
        let start = (step * 64) % 448;
        let micro: Vec<(Tensor, Vec<usize>)> =
            (0..8).map(|i| train.batch(start + i * 8, 8)).collect();
        last_loss = trainer
            .step_accumulated(&mut net, &micro, &mut rng)
            .mean_loss;
    }
    assert!(
        last_loss < 0.45,
        "accumulated training stalled: {last_loss}"
    );
}
