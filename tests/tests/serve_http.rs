//! End-to-end `diva-serve` tests over a real socket: every endpoint,
//! with the load-bearing property checked byte-for-byte — a served
//! `/run` document is identical to what `diva-report --json` (the
//! `run_with` → `to_json` pipeline) writes for the same options, and a
//! memo hit returns those bytes verbatim.

use diva_bench::scenario::{self, json, RunOptions};
use diva_dp::{event_epsilon, AccountantKind, DpEvent};
use diva_serve::{client, Server, ServerConfig};

fn start() -> Server {
    Server::start(ServerConfig::default()).expect("starting in-process server")
}

/// The fig13 subset used across these tests (squeezenet at the ws
/// baseline + DiVa point, one batch) and its CLI-equivalent options.
const RUN_BODY: &[u8] =
    br#"{"scenario": "fig13", "models": "squeezenet", "points": "ws,diva", "batch": "32"}"#;

fn run_body_options() -> RunOptions {
    RunOptions::default()
        .filter("model", &["squeezenet"])
        .filter("point", &["ws", "diva"])
        .batches(&[32])
}

#[test]
fn scenarios_endpoint_lists_registry_and_params() {
    let server = start();
    let response = client::get(server.addr(), "/scenarios").unwrap();
    assert_eq!(response.status, 200);
    let records = diva_bench::perf::parse_perf_json(&response.text()).unwrap();
    for name in scenario::list() {
        assert!(
            records.iter().any(|r| r.name == name),
            "scenario {name} missing from /scenarios"
        );
    }
    assert!(
        records
            .iter()
            .any(|r| r.name == "sram_mib" && r.tag_value("kind") == Some("param")),
        "design-space parameters missing from /scenarios"
    );
    server.shutdown();
    server.wait();
}

#[test]
fn run_response_is_byte_identical_to_diva_report_json() {
    let server = start();
    let expected = json::to_json(&scenario::run_with("fig13", &run_body_options()).unwrap());

    let first = client::post_json(server.addr(), "/run", RUN_BODY).unwrap();
    assert_eq!(first.status, 200, "{}", first.text());
    assert_eq!(
        first.body,
        expected.as_bytes(),
        "served /run document differs from the CLI pipeline's bytes"
    );

    // The second request is a perfect hit: same bytes, no recompute.
    let second = client::post_json(server.addr(), "/run", RUN_BODY).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.body, first.body);
    let stats = client::get(server.addr(), "/stats").unwrap();
    let records = diva_bench::perf::parse_perf_json(&stats.text()).unwrap();
    let cache = records.iter().find(|r| r.name == "cache").unwrap();
    assert!(
        cache.metric_value("hits").unwrap() >= 1.0,
        "repeat POST /run did not hit the memo cache: {}",
        stats.text()
    );
    assert_eq!(cache.metric_value("computed"), Some(1.0));
    server.shutdown();
    server.wait();
}

#[test]
fn run_with_keep_going_and_overrides_matches_cli_pipeline() {
    let server = start();
    let body = br#"{"scenario": "fig13", "models": "squeezenet", "points": "ws,diva",
                    "batch": "16", "set.sram_mib": "8", "keep_going": "true"}"#;
    let opts = RunOptions::default()
        .filter("model", &["squeezenet"])
        .filter("point", &["ws", "diva"])
        .batches(&[16])
        .set("sram_mib", "8")
        .keep_going();
    let expected = json::to_json(&scenario::run_with("fig13", &opts).unwrap());
    let response = client::post_json(server.addr(), "/run", body).unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    assert_eq!(response.body, expected.as_bytes());
    server.shutdown();
    server.wait();
}

#[test]
fn epsilon_endpoint_matches_in_process_accounting() {
    let server = start();
    let response = client::post_json(
        server.addr(),
        "/epsilon",
        br#"{"q": 0.01, "sigma": 1.1, "steps": 1000, "step_counts": "500,1000"}"#,
    )
    .unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    let records = diva_bench::perf::parse_perf_json(&response.text()).unwrap();
    let headline = |accountant: &str| {
        records
            .iter()
            .find(|r| r.name == "epsilon" && r.tag_value("accountant") == Some(accountant))
            .and_then(|r| r.metric_value("epsilon"))
            .unwrap_or_else(|| panic!("no {accountant} headline in {}", response.text()))
    };
    for kind in [AccountantKind::Pld, AccountantKind::Rdp] {
        let direct = event_epsilon(kind, &DpEvent::dp_sgd(0.01, 1.1, 1000), 1e-5).unwrap();
        let served = headline(kind.label());
        assert!(
            (served - direct).abs() <= 1e-9 * direct,
            "{}: served {served} vs direct {direct}",
            kind.label()
        );
    }
    assert!(headline("pld") <= headline("rdp"), "PLD must be tighter");
    assert_eq!(
        records.iter().filter(|r| r.name == "epsilon_curve").count(),
        4,
        "2 accountants x 2 curve points"
    );

    // Identical body → identical bytes from the cache.
    let again = client::post_json(
        server.addr(),
        "/epsilon",
        br#"{"q": 0.01, "sigma": 1.1, "steps": 1000, "step_counts": "500,1000"}"#,
    )
    .unwrap();
    assert_eq!(again.body, response.body);
    server.shutdown();
    server.wait();
}

#[test]
fn compare_endpoint_gates_server_side() {
    let server = start();
    let opts = RunOptions::default()
        .filter("q", &["0.01"])
        .filter("sigma", &["1"]);
    let doc = json::to_json(&scenario::run_with("dp_accounting", &opts).unwrap());

    let self_diff = format!("{doc}---\n{doc}");
    let response = client::post_json(server.addr(), "/compare", self_diff.as_bytes()).unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    assert!(response.text().contains("\"passed\": true"));

    // Same grid, different sigma values: every cell's epsilon moves well
    // past any tolerance the gate would accept at 1e-6.
    let other_opts = RunOptions::default()
        .filter("q", &["0.01"])
        .filter("sigma", &["1.5"]);
    let other = json::to_json(&scenario::run_with("dp_accounting", &other_opts).unwrap());
    let mismatch = format!("{doc}---\n{other}");
    let response = client::post_json(
        server.addr(),
        "/compare?tolerance=0.000001",
        mismatch.as_bytes(),
    )
    .unwrap();
    // Disjoint sigma labels mean no matched cells; a moved metric means a
    // violation — either way the gate must not pass.
    assert_eq!(response.status, 409, "{}", response.text());
    server.shutdown();
    server.wait();
}

#[test]
fn job_mode_defers_and_returns_the_sync_bytes() {
    let server = start();
    let sync_body =
        br#"{"scenario": "fig13", "models": "squeezenet", "points": "ws,diva", "batch": "48"}"#;
    let job_body = br#"{"scenario": "fig13", "models": "squeezenet", "points": "ws,diva", "batch": "48", "mode": "job"}"#;

    let accepted = client::post_json(server.addr(), "/run", job_body).unwrap();
    assert_eq!(accepted.status, 202, "{}", accepted.text());
    let text = accepted.text();
    let poll_path = text
        .split('"')
        .find(|s| s.starts_with("/jobs/"))
        .unwrap_or_else(|| panic!("no poll path in {text}"))
        .to_string();

    let mut job_bytes = None;
    for _ in 0..600 {
        let poll = client::get(server.addr(), &poll_path).unwrap();
        match poll.status {
            200 => {
                job_bytes = Some(poll.body);
                break;
            }
            202 => std::thread::sleep(std::time::Duration::from_millis(20)),
            other => panic!("job poll answered {other}: {}", poll.text()),
        }
    }
    let job_bytes = job_bytes.expect("job never completed");

    // The sync path shares the cache entry the job stored: same bytes.
    let sync = client::post_json(server.addr(), "/run", sync_body).unwrap();
    assert_eq!(sync.status, 200);
    assert_eq!(sync.body, job_bytes);

    let missing = client::get(server.addr(), "/jobs/99999").unwrap();
    assert_eq!(missing.status, 404);
    server.shutdown();
    server.wait();
}

#[test]
fn explore_endpoint_defers_to_a_job_and_matches_the_cli_document() {
    let server = start();
    let body = br#"{"strategy": "grid", "budget": 6, "batch_size": 3,
                    "workloads": "squeezenet@4", "knob.pe.rows": "64|128",
                    "knob.drain_rows": "2|4|8"}"#;

    let accepted = client::post_json(server.addr(), "/explore", body).unwrap();
    assert_eq!(accepted.status, 202, "{}", accepted.text());
    let text = accepted.text();
    let poll_path = text
        .split('"')
        .find(|s| s.starts_with("/jobs/"))
        .unwrap_or_else(|| panic!("no poll path in {text}"))
        .to_string();

    let mut job_bytes = None;
    for _ in 0..600 {
        let poll = client::get(server.addr(), &poll_path).unwrap();
        match poll.status {
            200 => {
                job_bytes = Some(poll.body);
                break;
            }
            202 => std::thread::sleep(std::time::Duration::from_millis(20)),
            other => panic!("explore job poll answered {other}: {}", poll.text()),
        }
    }
    let job_bytes = job_bytes.expect("explore job never completed");

    // The served document is byte-identical to diva-explore --json for
    // the same search.
    let req = diva_serve::api::parse_explore_request(body).unwrap();
    let direct = diva_bench::explore::explore(&req.config).unwrap();
    assert_eq!(
        job_bytes,
        diva_bench::explore::render::render_json(&direct).into_bytes(),
        "served /explore document differs from the CLI renderer's bytes"
    );

    // "mode": "sync" on the same search is a perfect cache hit.
    let sync_body = br#"{"strategy": "grid", "budget": 6, "batch_size": 3,
                    "workloads": "squeezenet@4", "knob.pe.rows": "64|128",
                    "knob.drain_rows": "2|4|8", "mode": "sync"}"#;
    let sync = client::post_json(server.addr(), "/explore", sync_body).unwrap();
    assert_eq!(sync.status, 200, "{}", sync.text());
    assert_eq!(sync.body, job_bytes);

    // A malformed search is the caller's 400, not a queued failure.
    let bad =
        client::post_json(server.addr(), "/explore", br#"{"strategy": "annealing"}"#).unwrap();
    assert_eq!(bad.status, 400, "{}", bad.text());
    server.shutdown();
    server.wait();
}

#[test]
fn shutdown_endpoint_stops_the_server() {
    let server = start();
    let response = client::post_json(server.addr(), "/shutdown", b"{}").unwrap();
    assert_eq!(response.status, 200);
    // wait() returning proves the accept loop exited and the job worker
    // drained; a fresh request must now fail (refused or reset).
    server.wait();
    assert!(
        client::get(server.addr(), "/scenarios").is_err(),
        "server still answering after shutdown"
    );
}
