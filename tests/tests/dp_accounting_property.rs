//! Seeded property tests for the privacy-accounting engine — the
//! cross-check layer between the two accountants and around the PLD/FFT
//! machinery. Configurations are drawn from a seeded generator (no
//! proptest in the approved dependency set), so every run checks the same
//! deterministic sample:
//!
//! * **PLD ≤ RDP**: the PLD accountant is tight up to discretization, the
//!   RDP conversion carries slack — ε_PLD may never exceed ε_RDP beyond a
//!   discretization-sized tolerance, anywhere on the grid.
//! * ε is monotone in steps, in 1/σ and in q, under *both* accountants.
//! * δ(ε(δ)) round-trips through the PLD's closed-form segment inversion.
//! * `compose(event, k)` equals `k`-fold sequential self-composition
//!   within discretization error (FFT binary exponentiation vs the
//!   definition).
//! * Batch ε is bitwise independent of input order and of the installed
//!   thread count — the workspace determinism contract extended to the
//!   accounting engine.

use diva_dp::{
    batch_epsilons, event_epsilon, Accountant, AccountantKind, DpEvent, PldAccountant,
    RdpAccountant,
};
use diva_tensor::{Backend, DivaRng};

const DELTA: f64 = 1e-5;

/// A random DP-SGD configuration in the regime the paper trains in.
fn random_config(gen: &mut DivaRng) -> (f64, f64, u64) {
    let q = 0.002 + 0.05 * f64::from(gen.uniform(0.0, 1.0));
    let sigma = 0.7 + 2.3 * f64::from(gen.uniform(0.0, 1.0));
    let steps = 100 + gen.index(3_000) as u64;
    (q, sigma, steps)
}

/// The engine's central invariant: PLD accounting is never looser than
/// RDP. The tolerance covers the PLD's O(√k·Δ) discretization error only —
/// a sign error or pessimism bug in either accountant trips this across
/// the whole grid.
#[test]
fn pld_epsilon_never_exceeds_rdp_epsilon() {
    let mut gen = DivaRng::seed_from_u64(0xac0);
    for case in 0..12 {
        let (q, sigma, steps) = random_config(&mut gen);
        let event = DpEvent::dp_sgd(q, sigma, steps);
        let rdp = event_epsilon(AccountantKind::Rdp, &event, DELTA).unwrap();
        let pld = event_epsilon(AccountantKind::Pld, &event, DELTA).unwrap();
        let tol = 1e-2 * rdp.max(1.0);
        assert!(
            pld <= rdp + tol,
            "case {case}: PLD looser than RDP at q={q} sigma={sigma} steps={steps}: \
             pld={pld} rdp={rdp}"
        );
        assert!(pld > 0.0, "case {case}: vanishing epsilon");
    }
}

/// ε grows with composition length under both accountants.
#[test]
fn epsilon_is_monotone_in_steps_both_accountants() {
    let mut gen = DivaRng::seed_from_u64(0xac1);
    for _ in 0..6 {
        let q = 0.002 + 0.03 * f64::from(gen.uniform(0.0, 1.0));
        let sigma = 0.8 + 1.5 * f64::from(gen.uniform(0.0, 1.0));
        let step = DpEvent::poisson_sampled(q, DpEvent::gaussian(sigma));
        for kind in [AccountantKind::Rdp, AccountantKind::Pld] {
            let counts = [100u64, 400, 1_600, 6_400];
            let eps = batch_epsilons(kind, &step, &counts, DELTA).unwrap();
            for (w, pair) in eps.windows(2).enumerate() {
                assert!(
                    pair[0] < pair[1] + 1e-9,
                    "{kind:?}: epsilon not increasing at q={q} sigma={sigma} \
                     ({} steps -> {} steps): {} vs {}",
                    counts[w],
                    counts[w + 1],
                    pair[0],
                    pair[1]
                );
            }
        }
    }
}

/// More noise can never cost more privacy, under both accountants.
#[test]
fn epsilon_is_monotone_in_sigma_both_accountants() {
    let mut gen = DivaRng::seed_from_u64(0xac2);
    for _ in 0..6 {
        let q = 0.002 + 0.03 * f64::from(gen.uniform(0.0, 1.0));
        let steps = 200 + gen.index(2_000) as u64;
        for kind in [AccountantKind::Rdp, AccountantKind::Pld] {
            let mut prev = f64::INFINITY;
            for sigma in [0.7, 1.0, 1.5, 2.5] {
                let eps = event_epsilon(kind, &DpEvent::dp_sgd(q, sigma, steps), DELTA).unwrap();
                assert!(
                    eps < prev + 1e-9,
                    "{kind:?}: epsilon not decreasing in sigma at q={q} steps={steps} \
                     sigma={sigma}: {eps} >= {prev}"
                );
                prev = eps;
            }
        }
    }
}

/// Seeing each example more often costs more privacy: ε is monotone in q.
#[test]
fn epsilon_is_monotone_in_sampling_rate_both_accountants() {
    let mut gen = DivaRng::seed_from_u64(0xac3);
    for _ in 0..6 {
        let sigma = 0.8 + 1.5 * f64::from(gen.uniform(0.0, 1.0));
        let steps = 200 + gen.index(2_000) as u64;
        for kind in [AccountantKind::Rdp, AccountantKind::Pld] {
            let mut prev = 0.0;
            for q in [0.002, 0.008, 0.02, 0.06] {
                let eps = event_epsilon(kind, &DpEvent::dp_sgd(q, sigma, steps), DELTA).unwrap();
                assert!(
                    eps > prev - 1e-9,
                    "{kind:?}: epsilon not increasing in q at sigma={sigma} steps={steps} \
                     q={q}: {eps} <= {prev}"
                );
                prev = eps;
            }
        }
    }
}

/// The PLD's closed-form ε(δ) inverts its own δ(ε): querying δ at the
/// reported ε lands back on the target (the inversion is exact on a grid
/// segment, so this holds to round-off, not merely to discretization).
#[test]
fn delta_of_epsilon_round_trips_through_pld() {
    let mut gen = DivaRng::seed_from_u64(0xac4);
    for case in 0..8 {
        let (q, sigma, steps) = random_config(&mut gen);
        let mut acc = PldAccountant::new();
        acc.compose(&DpEvent::dp_sgd(q, sigma, steps), 1).unwrap();
        for delta in [1e-4, 1e-6] {
            let eps = acc.epsilon(delta).unwrap();
            assert!(eps >= 0.0);
            if eps == 0.0 {
                // δ(0) was already at or below the target; nothing to invert.
                assert!(acc.delta(0.0).unwrap() <= delta);
                continue;
            }
            let back = acc.delta(eps).unwrap();
            assert!(
                (back - delta).abs() <= 1e-6 * delta + 1e-15,
                "case {case}: q={q} sigma={sigma} steps={steps}: \
                 delta {delta} -> eps {eps} -> delta {back}"
            );
        }
    }
}

/// `compose(event, k)` must equal composing the event k times sequentially
/// — binary exponentiation and its FFT convolutions against the
/// definition. Agreement is within discretization error (the two take
/// different truncation paths), not bitwise.
#[test]
fn composition_is_additive_within_discretization_error() {
    let mut gen = DivaRng::seed_from_u64(0xac5);
    for case in 0..5 {
        let q = 0.005 + 0.03 * f64::from(gen.uniform(0.0, 1.0));
        let sigma = 0.8 + 1.2 * f64::from(gen.uniform(0.0, 1.0));
        let k = 3 + gen.index(6) as u64;
        let step = DpEvent::poisson_sampled(q, DpEvent::gaussian(sigma));

        let mut bulk = PldAccountant::new();
        bulk.compose(&step, k).unwrap();
        let mut seq = PldAccountant::new();
        for _ in 0..k {
            seq.compose(&step, 1).unwrap();
        }
        let e_bulk = bulk.epsilon(DELTA).unwrap();
        let e_seq = seq.epsilon(DELTA).unwrap();
        assert!(
            (e_bulk - e_seq).abs() <= 1e-4 * e_seq.max(1.0),
            "case {case}: q={q} sigma={sigma} k={k}: bulk {e_bulk} vs sequential {e_seq}"
        );

        // And the RDP accountant is exactly additive (pure arithmetic).
        let mut rdp_bulk = diva_dp::RdpEventAccountant::new();
        rdp_bulk.compose(&step, k).unwrap();
        let mut rdp_seq = diva_dp::RdpEventAccountant::new();
        for _ in 0..k {
            rdp_seq.compose(&step, 1).unwrap();
        }
        let e1 = rdp_bulk.epsilon(DELTA).unwrap();
        let e2 = rdp_seq.epsilon(DELTA).unwrap();
        assert!(
            (e1 - e2).abs() <= 1e-12 * e1.max(1.0),
            "case {case}: RDP bulk {e1} vs sequential {e2}"
        );
    }
}

/// The legacy RDP accountant and the event-tree RDP accountant are the
/// same bound: they must agree to round-off on every random draw.
#[test]
fn event_accountant_matches_legacy_rdp() {
    let mut gen = DivaRng::seed_from_u64(0xac6);
    for _ in 0..10 {
        let (q, sigma, steps) = random_config(&mut gen);
        let legacy = RdpAccountant::new(q, sigma).epsilon(steps, DELTA);
        let event = event_epsilon(
            AccountantKind::Rdp,
            &DpEvent::dp_sgd(q, sigma, steps),
            DELTA,
        )
        .unwrap();
        assert!(
            (legacy - event).abs() < 1e-12 * legacy.max(1.0),
            "q={q} sigma={sigma} steps={steps}: legacy {legacy} vs event {event}"
        );
    }
}

/// Batch ε is bitwise identical across input orderings and across
/// installed thread counts — accounting inherits the workspace determinism
/// contract (it is single-threaded by construction; this is the regression
/// gate that keeps it so).
#[test]
fn batch_epsilon_is_bit_stable_across_order_and_threads() {
    let event = DpEvent::poisson_sampled(0.01, DpEvent::gaussian(1.1));
    let counts = [1_500u64, 250, 750, 250, 3_000];
    let mut sorted = counts;
    sorted.sort_unstable();

    for kind in [AccountantKind::Rdp, AccountantKind::Pld] {
        let serial =
            Backend::serial().install(|| batch_epsilons(kind, &event, &counts, DELTA).unwrap());
        let auto =
            Backend::auto().install(|| batch_epsilons(kind, &event, &counts, DELTA).unwrap());
        assert_eq!(
            serial, auto,
            "{kind:?}: thread count changed accounting bits"
        );

        let shuffled = batch_epsilons(kind, &event, &sorted, DELTA).unwrap();
        for (i, &c) in counts.iter().enumerate() {
            let j = sorted.iter().position(|&s| s == c).unwrap();
            assert_eq!(
                serial[i].to_bits(),
                shuffled[j].to_bits(),
                "{kind:?}: input order changed accounting bits at count {c}"
            );
        }
        // Duplicate counts resolve to identical bits.
        assert_eq!(serial[1].to_bits(), serial[3].to_bits());
    }
}

/// Heterogeneous trees: a composed (Gaussian + subsampled-Gaussian +
/// Laplace) release accounts under both accountants, PLD at or below RDP.
#[test]
fn heterogeneous_composition_keeps_the_pld_rdp_ordering() {
    let mut gen = DivaRng::seed_from_u64(0xac7);
    for case in 0..5 {
        let sigma = 1.0 + 1.5 * f64::from(gen.uniform(0.0, 1.0));
        let b = 2.0 + 3.0 * f64::from(gen.uniform(0.0, 1.0));
        let q = 0.005 + 0.02 * f64::from(gen.uniform(0.0, 1.0));
        let k = 20 + gen.index(200) as u64;
        let event = DpEvent::composed(vec![
            DpEvent::gaussian(sigma),
            DpEvent::laplace(b),
            DpEvent::dp_sgd(q, sigma, k),
        ]);
        let rdp = event_epsilon(AccountantKind::Rdp, &event, DELTA).unwrap();
        let pld = event_epsilon(AccountantKind::Pld, &event, DELTA).unwrap();
        assert!(
            pld <= rdp + 1e-2 * rdp.max(1.0),
            "case {case}: heterogeneous PLD {pld} looser than RDP {rdp}"
        );
    }
}
