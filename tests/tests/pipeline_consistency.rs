//! Cross-crate consistency: the shape-level workload lowering must agree
//! with what the functional neural-network stack actually computes, and
//! simulated quantities must obey conservation-style invariants.

use diva_arch::{GemmShape, Phase, TrainingOpKind};
use diva_core::{Accelerator, DesignPoint};
use diva_nn::{GradMode, Layer, Network};
use diva_tensor::{Conv2dGeom, DivaRng, Tensor};
use diva_workload::{zoo, Algorithm, LayerSpec};

/// The Figure 6 lowering must match the GEMMs the functional stack runs:
/// a Dense layer's forward really is a (B, I, O) matmul, its per-example
/// gradient really is an (I, 1, O) outer product, etc.
#[test]
fn dense_lowering_matches_functional_shapes() {
    let (b, i, o) = (4usize, 6usize, 3usize);
    let spec = LayerSpec::Linear {
        name: "fc".into(),
        in_f: i,
        out_f: o,
    };
    let fwd = spec.forward_gemms(b as u64);
    assert_eq!(fwd[0].shape, GemmShape::new(b as u64, i as u64, o as u64));

    // Functional check: run the layer, confirm the per-example gradient has
    // exactly (I × O) elements per example — the M×N of the lowered GEMM.
    let mut rng = DivaRng::seed_from_u64(1);
    let net = Network::new(vec![Layer::dense(i, o, false, &mut rng)]);
    let x = Tensor::uniform(&[b, i], -1.0, 1.0, &mut rng);
    let (y, caches) = net.forward(&x);
    assert_eq!(y.shape().dims(), &[b, o]);
    let grads = net.backward(&caches, &Tensor::full(&[b, o], 1.0), GradMode::PerExample);
    let pe = spec.per_example_wgrad_gemms(b as u64);
    assert_eq!(pe[0].count, b as u64);
    assert_eq!(pe[0].shape.out_elems(), (i * o) as u64);
    assert_eq!(grads.per_example_sq_norms().len(), b);
}

/// Conv lowering K/M dimensions must match the actual im2col geometry.
#[test]
fn conv_lowering_matches_im2col_geometry() {
    let geom = Conv2dGeom::new(3, 8, 3, 2, 1, 16, 16);
    let (p, q) = geom.out_hw();
    let spec = LayerSpec::Conv {
        name: "conv".into(),
        cin: 3,
        cout: 8,
        k: 3,
        stride: 2,
        pad: 1,
        in_h: 16,
        in_w: 16,
        groups: 1,
    };
    let b = 5u64;
    let fwd = spec.forward_gemms(b)[0].shape;
    assert_eq!(fwd.m, b * (p * q) as u64);
    assert_eq!(fwd.k, geom.patch_len() as u64);
    assert_eq!(fwd.n, 8);

    // The functional im2col produces exactly (B·P·Q, patch_len).
    let mut rng = DivaRng::seed_from_u64(2);
    let x = Tensor::uniform(&[b as usize, 3, 16, 16], -1.0, 1.0, &mut rng);
    let patches = diva_tensor::im2col(&x, &geom);
    assert_eq!(patches.shape().dims()[0] as u64, fwd.m);
    assert_eq!(patches.shape().dims()[1] as u64, fwd.k);
}

/// MAC conservation: per-example weight-gradient MACs equal per-batch
/// weight-gradient MACs for every model (they compute the same tensor).
#[test]
fn wgrad_macs_conserved_across_algorithms() {
    for m in zoo::all_models() {
        let b = 16;
        let macs_of = |alg: Algorithm, phase: Phase| -> u64 {
            m.lower(alg, b)
                .iter()
                .filter(|op| op.phase == phase)
                .map(|op| op.macs())
                .sum()
        };
        let per_batch = macs_of(Algorithm::Sgd, Phase::BwdPerBatchGrad);
        let per_example = macs_of(Algorithm::DpSgd, Phase::BwdPerExampleGrad);
        assert_eq!(per_batch, per_example, "{}", m.name);
    }
}

/// DP-SGD(R) GEMM work = SGD work + one extra backprop (act grads +
/// per-example grads); forward work is identical everywhere.
#[test]
fn reweighted_work_decomposition() {
    for m in zoo::all_models() {
        let b = 8;
        let phase_macs = |alg: Algorithm, phase: Phase| -> u64 {
            m.lower(alg, b)
                .iter()
                .filter(|op| op.phase == phase)
                .map(|op| op.macs())
                .sum()
        };
        for alg in Algorithm::ALL {
            assert_eq!(
                phase_macs(alg, Phase::Forward),
                phase_macs(Algorithm::Sgd, Phase::Forward),
                "{}: forward must be algorithm-independent",
                m.name
            );
        }
        // 2nd-pass act grads equal 1st-pass act grads.
        assert_eq!(
            phase_macs(Algorithm::DpSgdReweighted, Phase::BwdActGrad1),
            phase_macs(Algorithm::DpSgdReweighted, Phase::BwdActGrad2),
            "{}",
            m.name
        );
    }
}

/// Every op of a lowered step gets simulated: op counts match, no op is
/// dropped, and total cycles are the sum of per-op cycles.
#[test]
fn simulation_covers_every_op() {
    let m = zoo::squeezenet();
    let ops = m.lower(Algorithm::DpSgdReweighted, 32);
    let accel = Accelerator::from_design_point(DesignPoint::Diva).unwrap();
    let r = accel.run(&m, Algorithm::DpSgdReweighted, 32);
    assert_eq!(r.timing.ops.len(), ops.len());
    let sum: u64 = r.timing.ops.iter().map(|o| o.cycles).sum();
    assert_eq!(sum, r.timing.total_cycles());
    // Phase totals also add up to the grand total.
    let phase_sum: u64 = r.timing.phases.values().map(|p| p.cycles).sum();
    assert_eq!(phase_sum, r.timing.total_cycles());
}

/// Batched GEMM counts must be consistent with the batch size for every
/// model: per-example GEMM instance counts are multiples of B.
#[test]
fn per_example_counts_scale_with_batch() {
    for m in zoo::all_models() {
        let b = 8u64;
        for op in m.lower(Algorithm::DpSgd, b) {
            if op.phase == Phase::BwdPerExampleGrad {
                if let TrainingOpKind::Gemm { count, .. } = op.kind {
                    assert!(
                        count % b == 0,
                        "{}: per-example GEMM count {count} not a multiple of B={b}",
                        m.name
                    );
                }
            }
        }
    }
}

/// Design-point dominance: adding the PPU never hurts; removing it never
/// helps (cycles are monotone).
#[test]
fn ppu_is_monotone_improvement() {
    let diva = Accelerator::from_design_point(DesignPoint::Diva).unwrap();
    let no_ppu = Accelerator::from_design_point(DesignPoint::DivaNoPpu).unwrap();
    for m in zoo::all_models() {
        for alg in [Algorithm::DpSgd, Algorithm::DpSgdReweighted] {
            let with = diva.run(&m, alg, 8).timing.total_cycles();
            let without = no_ppu.run(&m, alg, 8).timing.total_cycles();
            assert!(
                with <= without,
                "{} {alg}: PPU made things worse ({with} > {without})",
                m.name
            );
        }
    }
}
