//! Golden-value pins for the accounting engine: exact ε for the canonical
//! MNIST configuration and exact analytical-calibration σ values.
//!
//! These are regression pins, not literature transcriptions: the values
//! were produced by this engine and frozen, so any change to the RDP
//! bound, the PLD discretization, the FFT, or the erfc kernel that moves
//! ε by more than ~1e-9 relative trips a test and must be deliberate.
//! (Bitwise pins would be tighter but `sin`/`cos`/`exp` route through the
//! platform libm, which is not correctly-rounded everywhere; 1e-9 is far
//! below any accounting-relevant change and safely above libm skew.)
//!
//! Sanity anchors baked into the choice of pins:
//! * the MNIST config (q = 600/60000 = 0.01, σ = 1.0, δ = 1e-5) sits in
//!   the regime published DP-SGD results report ε ≈ 1–5;
//! * σ_analytic(1, 1e-5) ≈ 3.73 reproduces Balle & Wang's worked example;
//! * PLD ε is 60–85% of RDP ε across the pinned step counts — the
//!   tightening the engine exists to deliver.

use diva_dp::{
    classic_gaussian_sigma, event_epsilon, gaussian_delta, gaussian_sigma, AccountantKind, DpEvent,
};

const Q: f64 = 0.01; // 600 / 60_000
const SIGMA: f64 = 1.0;
const DELTA: f64 = 1e-5;

fn close(got: f64, pin: f64, what: &str) {
    assert!(
        (got - pin).abs() <= 1e-9 * pin.abs(),
        "{what}: got {got:.17e}, pinned {pin:.17e}"
    );
}

/// ε under the RDP (moments) accountant for the MNIST configuration.
#[test]
fn mnist_rdp_epsilon_pins() {
    let pins = [
        (500u64, 2.091_525_591_655_903_7),
        (1_000, 2.538_347_545_458_917_5),
        (2_000, 3.346_113_821_021_002),
        (4_000, 4.636_577_688_746_822),
        (6_000, 5.690_234_819_257_238),
    ];
    for (steps, pin) in pins {
        let eps = event_epsilon(
            AccountantKind::Rdp,
            &DpEvent::dp_sgd(Q, SIGMA, steps),
            DELTA,
        )
        .unwrap();
        close(eps, pin, &format!("rdp epsilon at {steps} steps"));
    }
}

/// ε under the PLD accountant for the same configuration — strictly inside
/// the RDP pins above (62–79% here), which is the engine's reason to exist.
#[test]
fn mnist_pld_epsilon_pins() {
    let pins = [
        (500u64, 1.326_489_890_429_684_7),
        (1_000, 1.829_063_665_110_348),
        (2_000, 2.585_392_085_785_442),
        (4_000, 3.725_403_506_242_671),
        (6_000, 4.649_068_324_451_747),
    ];
    for (steps, pin) in pins {
        let eps = event_epsilon(
            AccountantKind::Pld,
            &DpEvent::dp_sgd(Q, SIGMA, steps),
            DELTA,
        )
        .unwrap();
        close(eps, pin, &format!("pld epsilon at {steps} steps"));
    }
}

/// Analytical Gaussian calibration (Balle & Wang 2018): σ(ε, δ) pins,
/// including the paper's worked ε = 1 example, plus the round-trip
/// δ(σ(ε, δ), ε) = δ and dominance over the classic calibration.
#[test]
fn analytic_gaussian_sigma_pins() {
    let pins = [
        (0.5, 1e-5, 7.031_826_675_587_363),
        (1.0, 1e-5, 3.730_631_634_816_464_5),
        (2.0, 1e-6, 2.230_476_271_188_041_3),
        (4.0, 1e-5, 1.081_161_849_520_820_6),
    ];
    for (eps, delta, pin) in pins {
        let sigma = gaussian_sigma(eps, delta).unwrap();
        close(sigma, pin, &format!("analytic sigma({eps}, {delta:e})"));
        // The calibration inverts the exact divergence...
        let back = gaussian_delta(sigma, eps).unwrap();
        assert!(
            (back - delta).abs() <= 1e-6 * delta,
            "delta round-trip at eps {eps}: {back} vs {delta}"
        );
        // ...and dominates the classic sufficient condition.
        let classic = classic_gaussian_sigma(eps, delta).unwrap();
        assert!(
            sigma < classic,
            "analytic {sigma} not below classic {classic} at eps {eps}"
        );
    }
}

/// The classic calibration formula itself (one pinned spot check, so a
/// typo in the constant 1.25 or the square root cannot slip through).
#[test]
fn classic_gaussian_sigma_pin() {
    // sqrt(2 ln(1.25e5)) / 1.0
    close(
        classic_gaussian_sigma(1.0, 1e-5).unwrap(),
        4.844_805_262_605_389,
        "classic sigma(1, 1e-5)",
    );
}
