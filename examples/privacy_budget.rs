//! Privacy-budget exploration with the RDP accountant: how ε grows with
//! training steps, shrinks with noise, and how to calibrate σ for a target
//! budget — the knobs a DiVa user would tune before training.
//!
//! Run with: `cargo run -p diva-examples --bin privacy_budget`

use diva_dp::{calibrate_sigma, RdpAccountant};

fn main() {
    let delta = 1e-5;
    let q = 256.0 / 60_000.0; // MNIST-scale sampling rate

    println!("epsilon(steps) at q = {q:.4}, delta = {delta:e}:\n");
    println!(
        "  {:<8} {:>10} {:>10} {:>10}",
        "steps", "sigma=0.8", "sigma=1.1", "sigma=2.0"
    );
    for steps in [100u64, 1_000, 5_000, 15_000, 50_000] {
        let eps: Vec<f64> = [0.8, 1.1, 2.0]
            .iter()
            .map(|&s| RdpAccountant::new(q, s).epsilon(steps, delta))
            .collect();
        println!(
            "  {steps:<8} {:>10.2} {:>10.2} {:>10.2}",
            eps[0], eps[1], eps[2]
        );
    }

    println!(
        "\ncalibrating sigma for a 60-epoch run ({} steps):",
        60 * 234
    );
    println!("  {:<12} {:>8}", "target eps", "sigma");
    for target in [1.0, 2.0, 4.0, 8.0] {
        let sigma = calibrate_sigma(target, delta, q, 60 * 234);
        println!("  {target:<12} {sigma:>8.3}");
    }

    // Show the order that wins the conversion, for the curious.
    let acc = RdpAccountant::new(q, 1.1);
    let steps = 60 * 234;
    println!(
        "\nat sigma = 1.1 after {steps} steps: eps = {:.3}, best Renyi order alpha = {}",
        acc.epsilon(steps, delta),
        acc.best_order(steps, delta)
    );
    println!(
        "\nTighter budgets need more noise; DP-SGD's compute cost is what DiVa attacks,\n\
         so cheaper steps let you buy accuracy back with longer training at the same eps."
    );
}
