//! Privacy-budget exploration with the accounting engine: how ε grows
//! with training steps, how much tighter PLD accounting is than RDP, and
//! how to calibrate σ for a target budget — the knobs a DiVa user would
//! tune before training.
//!
//! Run with: `cargo run -p diva-examples --bin privacy_budget`

use diva_dp::{
    batch_epsilons, calibrate_noise, classic_gaussian_sigma, gaussian_sigma, AccountantKind,
    DpEvent, RdpAccountant,
};

fn main() {
    let delta = 1e-5;
    let q = 256.0 / 60_000.0; // MNIST-scale sampling rate

    // One event tree, many step counts, both accountants — the batch API
    // reuses composition prefixes instead of re-accounting per row.
    let step = DpEvent::poisson_sampled(q, DpEvent::gaussian(1.1));
    let counts = [100u64, 1_000, 5_000, 15_000, 50_000];
    let rdp = batch_epsilons(AccountantKind::Rdp, &step, &counts, delta).expect("valid event");
    let pld = batch_epsilons(AccountantKind::Pld, &step, &counts, delta).expect("valid event");

    println!("epsilon(steps) at q = {q:.4}, sigma = 1.1, delta = {delta:e}:\n");
    println!(
        "  {:<8} {:>10} {:>10} {:>9}",
        "steps", "rdp", "pld", "saved"
    );
    for (i, steps) in counts.iter().enumerate() {
        println!(
            "  {steps:<8} {:>10.3} {:>10.3} {:>8.1}%",
            rdp[i],
            pld[i],
            100.0 * (1.0 - pld[i] / rdp[i])
        );
    }

    let steps = 60 * 234;
    println!("\ncalibrating sigma for a 60-epoch run ({steps} steps):");
    println!(
        "  {:<12} {:>10} {:>10}",
        "target eps", "rdp sigma", "pld sigma"
    );
    for target in [1.0, 2.0, 4.0, 8.0] {
        let s_rdp = calibrate_noise(AccountantKind::Rdp, target, delta, q, steps)
            .expect("target reachable");
        let s_pld = calibrate_noise(AccountantKind::Pld, target, delta, q, steps)
            .expect("target reachable");
        println!("  {target:<12} {s_rdp:>10.3} {s_pld:>10.3}");
    }

    // Single-shot Gaussian release: analytical calibration (Balle & Wang
    // 2018) vs the classic sufficient condition.
    println!("\none-shot Gaussian mechanism, sigma for (eps, {delta:e}):");
    println!(
        "  {:<12} {:>10} {:>10}",
        "target eps", "classic", "analytic"
    );
    for target in [0.25, 0.5, 1.0] {
        let classic = classic_gaussian_sigma(target, delta).expect("valid target");
        let analytic = gaussian_sigma(target, delta).expect("valid target");
        println!("  {target:<12} {classic:>10.3} {analytic:>10.3}");
    }

    // A deliberately impossible target surfaces as a typed error, not a
    // panic.
    let err = calibrate_noise(AccountantKind::Rdp, 1e-6, 1e-12, 0.5, 1_000_000)
        .expect_err("absurd target");
    println!("\nimpossible target: {err}");

    // Show the order that wins the RDP conversion, for the curious.
    let acc = RdpAccountant::new(q, 1.1);
    println!(
        "\nat sigma = 1.1 after {steps} steps: rdp eps = {:.3}, best Renyi order alpha = {}",
        acc.epsilon(steps, delta),
        acc.best_order(steps, delta)
    );
    println!(
        "\nTighter budgets need more noise; DP-SGD's compute cost is what DiVa attacks,\n\
         so cheaper steps let you buy accuracy back with longer training at the same eps."
    );
}
