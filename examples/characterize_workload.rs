//! Workload characterization for one model (the paper's Section III in
//! miniature): memory breakdown, max batch, per-phase latency on the WS
//! baseline, and what DiVa does to it.
//!
//! Run with: `cargo run -p diva-examples --bin characterize_workload [model]`
//! where `[model]` is one of: vgg16, resnet50, resnet152, squeezenet,
//! mobilenet, bert-base, bert-large, lstm-small, lstm-large.

use diva_core::{Accelerator, DesignPoint, Phase};
use diva_workload::{zoo, Algorithm, ModelSpec};

const HBM: u64 = 16 * (1 << 30);

fn pick_model(arg: Option<String>) -> ModelSpec {
    match arg.as_deref() {
        None | Some("resnet50") => zoo::resnet50(),
        Some("vgg16") => zoo::vgg16(),
        Some("resnet152") => zoo::resnet152(),
        Some("squeezenet") => zoo::squeezenet(),
        Some("mobilenet") => zoo::mobilenet(),
        Some("bert-base") => zoo::bert_base(),
        Some("bert-large") => zoo::bert_large(),
        Some("lstm-small") => zoo::lstm_small(),
        Some("lstm-large") => zoo::lstm_large(),
        Some(other) => {
            eprintln!("unknown model '{other}', defaulting to resnet50");
            zoo::resnet50()
        }
    }
}

fn main() {
    let model = pick_model(std::env::args().nth(1));
    println!(
        "{}: {} layers, {:.1} M parameters\n",
        model.name,
        model.layers.len(),
        model.params() as f64 / 1e6
    );

    // --- Memory (Section III-A) ---
    println!("max power-of-two batch under 16 GB:");
    for alg in Algorithm::ALL {
        println!(
            "  {:<10} {:>6}",
            alg.label(),
            model.max_batch_pow2(alg, HBM)
        );
    }
    let batch = model.max_batch_pow2(Algorithm::DpSgd, HBM).max(1);
    println!("\nmemory at batch {batch} (GiB):");
    for alg in Algorithm::ALL {
        let p = model.memory_profile(alg, batch);
        println!(
            "  {:<10} weights {:>5.2}  acts {:>5.2}  per-batch {:>5.2}  per-example {:>6.2}  total {:>6.2}",
            alg.label(),
            gib(p.weight_bytes),
            gib(p.activation_bytes),
            gib(p.per_batch_grad_bytes),
            gib(p.per_example_grad_bytes),
            gib(p.total()),
        );
    }

    // --- Latency (Section III-B) ---
    let ws = Accelerator::from_design_point(DesignPoint::WsBaseline).unwrap();
    let diva = Accelerator::from_design_point(DesignPoint::Diva).unwrap();
    println!("\nper-phase cycles at batch {batch} (millions):");
    println!(
        "  {:<34} {:>10} {:>10} {:>10} {:>10}",
        "phase", "WS SGD", "WS DP(R)", "DiVa DP(R)", "WS/DiVa"
    );
    let ws_sgd = ws.run(&model, Algorithm::Sgd, batch);
    let ws_dpr = ws.run(&model, Algorithm::DpSgdReweighted, batch);
    let diva_dpr = diva.run(&model, Algorithm::DpSgdReweighted, batch);
    for phase in Phase::ALL {
        let (a, b, c) = (
            ws_sgd.phase_cycles(phase),
            ws_dpr.phase_cycles(phase),
            diva_dpr.phase_cycles(phase),
        );
        if a + b + c == 0 {
            continue;
        }
        let ratio = if c > 0 {
            format!("{:>9.2}x", b as f64 / c as f64)
        } else if b > 0 {
            "    fused".to_string()
        } else {
            "        -".to_string()
        };
        println!(
            "  {:<34} {:>10.1} {:>10.1} {:>10.1} {ratio}",
            phase.label(),
            a as f64 / 1e6,
            b as f64 / 1e6,
            c as f64 / 1e6,
        );
    }
    println!(
        "\nend-to-end: WS SGD {:.2} ms | WS DP-SGD(R) {:.2} ms | DiVa DP-SGD(R) {:.2} ms",
        1e3 * ws_sgd.seconds,
        1e3 * ws_dpr.seconds,
        1e3 * diva_dpr.seconds,
    );
    println!(
        "DP tax on WS: {:.1}x  |  DiVa speedup: {:.1}x  |  DiVa DP vs WS SGD: {:.2}x",
        ws_dpr.seconds / ws_sgd.seconds,
        ws_dpr.seconds / diva_dpr.seconds,
        ws_sgd.seconds / diva_dpr.seconds,
    );
}

fn gib(bytes: u64) -> f64 {
    bytes as f64 / (1u64 << 30) as f64
}
