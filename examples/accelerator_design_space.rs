//! Design-space exploration over DiVa's knobs: PE array geometry and the
//! drain rate R (which sets PPU width). Shows the trade-offs behind the
//! paper's Table II defaults.
//!
//! Run with: `cargo run -p diva-examples --bin accelerator_design_space`

use diva_core::{Accelerator, AcceleratorConfig, Dataflow, DesignPoint};
use diva_workload::{zoo, Algorithm};

fn main() {
    let model = zoo::resnet50();
    let batch = 64;
    let ws = Accelerator::from_design_point(DesignPoint::WsBaseline).unwrap();
    let baseline = ws.run(&model, Algorithm::DpSgdReweighted, batch).seconds;

    println!(
        "ResNet-50, DP-SGD(R), batch {batch}: WS baseline {:.2} ms\n",
        1e3 * baseline
    );

    // --- Sweep drain rate R (PPU adder-tree instances) ---
    println!("DiVa drain rate R (rows/cycle) sweep, 128x128 PEs:");
    println!("  {:<4} {:>10} {:>10}", "R", "step (ms)", "speedup");
    for r in [1u64, 2, 4, 8, 16, 32] {
        let mut cfg = AcceleratorConfig::tpu_v3_like(Dataflow::OuterProduct);
        cfg.drain_rows_per_cycle = r;
        let accel = Accelerator::from_config(format!("DiVa R={r}"), cfg).expect("valid");
        let t = accel.run(&model, Algorithm::DpSgdReweighted, batch).seconds;
        println!("  {r:<4} {:>10.2} {:>9.2}x", 1e3 * t, baseline / t);
    }
    println!("  (diminishing returns past the paper's default R = 8)");

    // --- Sweep PE array aspect ratio at constant MAC count ---
    println!("\nPE array aspect ratio sweep (16,384 MACs total):");
    println!("  {:<10} {:>10} {:>10}", "geometry", "step (ms)", "speedup");
    for (rows, cols) in [(64u64, 256u64), (128, 128), (256, 64), (512, 32)] {
        let mut cfg = AcceleratorConfig::tpu_v3_like(Dataflow::OuterProduct);
        cfg.pe = diva_core::AcceleratorConfig::tpu_v3_like(Dataflow::OuterProduct).pe;
        cfg.pe.rows = rows;
        cfg.pe.cols = cols;
        cfg.drain_rows_per_cycle = 8.min(rows);
        let accel = Accelerator::from_config(format!("DiVa {rows}x{cols}"), cfg).expect("valid");
        let t = accel.run(&model, Algorithm::DpSgdReweighted, batch).seconds;
        println!(
            "  {:<10} {:>10.2} {:>9.2}x",
            format!("{rows}x{cols}"),
            1e3 * t,
            baseline / t
        );
    }

    // --- Scale the array size ---
    println!("\nPE array size sweep (square arrays):");
    println!(
        "  {:<10} {:>12} {:>10} {:>10}",
        "geometry", "peak TFLOPS", "step (ms)", "speedup"
    );
    for side in [64u64, 128, 256] {
        let mut cfg = AcceleratorConfig::tpu_v3_like(Dataflow::OuterProduct);
        cfg.pe.rows = side;
        cfg.pe.cols = side;
        let accel = Accelerator::from_config(format!("DiVa {side}"), cfg).expect("valid");
        let t = accel.run(&model, Algorithm::DpSgdReweighted, batch).seconds;
        println!(
            "  {:<10} {:>12.1} {:>10.2} {:>9.2}x",
            format!("{side}x{side}"),
            accel.config().peak_tflops(),
            1e3 * t,
            baseline / t
        );
    }
    println!(
        "\nBigger arrays help less than their peak suggests: per-example GEMMs don't\n\
         grow with the array — exactly the utilization wall the paper describes."
    );
}
