//! Quickstart: why DP-SGD breaks systolic arrays, in one GEMM.
//!
//! Simulates a per-example weight-gradient GEMM (the small-K shape of the
//! paper's Figure 6) on the weight-stationary baseline and on DiVa's
//! outer-product engine — first with the fast analytic models at TPUv3
//! scale, then with the register-level functional arrays at a small scale
//! to show both agree.
//!
//! Run with: `cargo run -p diva-examples --bin quickstart`

use diva_core::{Accelerator, DesignPoint, GemmShape};
use diva_pearray::{OuterProductArray, WsArray};
use diva_tensor::{matmul, DivaRng, Tensor};

fn main() {
    // A late-layer ResNet per-example weight gradient: M = Cin*R*S = 4608,
    // K = P*Q = 16 (a 4x4 feature map), N = Cout = 512 — K is tiny and
    // batch-independent, the shape that starves systolic arrays.
    let shape = GemmShape::new(4608, 16, 512);
    let batch = 32;

    println!("Per-example weight-gradient GEMM {shape}, batch of {batch} independent GEMMs\n");

    for dp in [DesignPoint::WsBaseline, DesignPoint::Diva] {
        let accel = Accelerator::from_design_point(dp).unwrap();
        let t = accel.simulator().gemm_timing(shape, batch, false);
        println!(
            "{:<12}  {:>12} cycles   {:>5.1}% FLOPS utilization   {:>6.2} effective TFLOPS",
            dp.label(),
            t.total_cycles,
            100.0 * t.utilization,
            t.effective_tflops(accel.config().freq_hz),
        );
    }

    // The same story on 8x8 functional arrays, executed register by
    // register and checked against a reference matmul.
    println!("\nFunctional (register-level) check on an 8x8 array, GEMM (64, 2, 8):");
    let mut rng = DivaRng::seed_from_u64(42);
    let a = Tensor::uniform(&[64, 2], -1.0, 1.0, &mut rng);
    let b = Tensor::uniform(&[2, 8], -1.0, 1.0, &mut rng);
    let reference = matmul(&a, &b);

    let ws = WsArray::new(8, 8, 8).gemm(&a, &b);
    let op = OuterProductArray::new(8, 8, 8).gemm(&a, &b);
    assert!(ws.output.max_abs_diff(&reference) < 1e-4);
    assert!(op.output.max_abs_diff(&reference) < 1e-4);
    println!(
        "  WS systolic : {:>5} cycles, utilization {:>5.1}%",
        ws.cycles,
        100.0 * ws.utilization
    );
    println!(
        "  outer-prod  : {:>5} cycles, utilization {:>5.1}%",
        op.cycles,
        100.0 * op.utilization
    );
    println!("\nBoth engines computed the exact same product; only the cycles differ.");
}
