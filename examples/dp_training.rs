//! End-to-end differentially private training with the functional stack:
//! trains a small MLP classifier on synthetic Gaussian-cluster data with
//! DP-SGD(R), tracks the privacy budget with the accounting engine (the
//! tight PLD bound next to the conservative RDP one), and verifies the
//! DP-SGD ≡ DP-SGD(R) identity the paper exploits.
//!
//! Run with: `cargo run -p diva-examples --bin dp_training`

use diva_dp::{make_blobs, DpSgdConfig, DpTrainer, TrainingAlgorithm};
use diva_nn::{Layer, Network};
use diva_tensor::{argmax_rows, DivaRng};

fn main() {
    let mut rng = DivaRng::seed_from_u64(2022);
    let train = make_blobs(2048, 16, 4, 0.6, &mut rng);
    let test = make_blobs(512, 16, 4, 0.6, &mut rng);

    let mut net = Network::new(vec![
        Layer::dense(16, 64, true, &mut rng),
        Layer::relu(),
        Layer::dense(64, 4, true, &mut rng),
    ]);

    let batch = 128usize;
    let epochs = 10usize;
    let config = DpSgdConfig {
        algorithm: TrainingAlgorithm::DpSgdReweighted,
        clip_norm: 1.0,
        noise_multiplier: 1.1,
        learning_rate: 0.5,
    };
    let trainer = DpTrainer::builder().config(config).build();
    let sampling_rate = batch as f64 / train.len() as f64;

    println!(
        "Training a {}-parameter MLP with {} (C = {}, sigma = {})\n",
        net.param_count(),
        config.algorithm,
        config.clip_norm,
        config.noise_multiplier
    );

    let steps_per_epoch = train.len() / batch;
    let mut steps = 0u64;
    for epoch in 1..=epochs {
        let mut loss_sum = 0.0;
        let mut clipped = 0usize;
        for s in 0..steps_per_epoch {
            let (x, labels) = train.batch(s * batch, batch);
            let report = trainer.step(&mut net, &x, &labels, &mut rng);
            loss_sum += report.mean_loss;
            clipped += report.clip.as_ref().map_or(0, |c| c.clipped_count);
            steps += 1;
        }
        let spent = trainer
            .privacy_spent(sampling_rate, steps, 1e-5)
            .expect("private config");
        println!(
            "epoch {epoch:>2}: loss {:.3}  clipped {:>4}/{}  eps = {:.2} (rdp {:.2}, delta = 1e-5)",
            loss_sum / steps_per_epoch as f64,
            clipped,
            steps_per_epoch * batch,
            spent.epsilon,
            spent.epsilon_rdp
        );
    }

    // Evaluate.
    let (x, labels) = test.batch(0, test.len());
    let (logits, _) = net.forward(&x);
    let preds = argmax_rows(&logits);
    let correct = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
    println!(
        "\ntest accuracy: {:.1}% ({correct}/{})",
        100.0 * correct as f64 / labels.len() as f64,
        labels.len()
    );

    // The identity behind DP-SGD(R): same noise draw, same update.
    let mut rng_a = DivaRng::seed_from_u64(7);
    let mut rng_b = DivaRng::seed_from_u64(7);
    let (x, labels) = train.batch(0, batch);
    let mut net_a = net.clone();
    let mut net_b = net.clone();
    DpTrainer::new(DpSgdConfig {
        algorithm: TrainingAlgorithm::DpSgd,
        ..config
    })
    .step(&mut net_a, &x, &labels, &mut rng_a);
    DpTrainer::new(DpSgdConfig {
        algorithm: TrainingAlgorithm::DpSgdReweighted,
        ..config
    })
    .step(&mut net_b, &x, &labels, &mut rng_b);
    let max_diff = net_a
        .layers()
        .iter()
        .zip(net_b.layers())
        .flat_map(|(a, b)| {
            a.params()
                .into_iter()
                .zip(b.params())
                .map(|(pa, pb)| pa.max_abs_diff(pb))
        })
        .fold(0.0f32, f32::max);
    println!(
        "DP-SGD vs DP-SGD(R) update difference (same noise): {max_diff:.2e} — identical \
         up to float reassociation, the property the paper's Algorithm 1 relies on"
    );
}
